//! [`wft_api`] trait implementations for [`ShardedStore`].
//!
//! Point operations route to the owning shard and inherit the tree's typed
//! outcomes; range reads resolve their [`RangeSpec`] once and split the
//! closed interval at shard boundaries; [`BatchApply`] is the store's own
//! two-phase pipeline (validation, shard grouping, optional cross-shard
//! fan-out) rather than the serial helper single trees use.

use wft_api::{
    BatchApply, BatchError, OpOutcome, PatchFn, PointMap, RangeKey, RangeRead, RangeSpec,
    SnapshotRead, SnapshotToken, StoreOp, TimestampFront, UpdateOutcome,
};
use wft_seq::{Augmentation, Key, Value};

use crate::store::ShardedStore;

impl<K: Key, V: Value, A: Augmentation<K, V>> PointMap<K, V> for ShardedStore<K, V, A> {
    fn insert(&self, key: K, value: V) -> UpdateOutcome<V> {
        let shard = self.shard_of(&key);
        self.gated_write(shard, move || {
            PointMap::insert(&self.shards[shard], key, value)
        })
    }

    fn replace(&self, key: K, value: V) -> UpdateOutcome<V> {
        UpdateOutcome::Applied {
            prior: self.insert_or_replace(key, value),
        }
    }

    fn remove(&self, key: &K) -> UpdateOutcome<V> {
        let shard = self.shard_of(key);
        self.gated_write(shard, || PointMap::remove(&self.shards[shard], key))
    }

    fn get(&self, key: &K) -> Option<V> {
        ShardedStore::get(self, key)
    }

    fn contains(&self, key: &K) -> bool {
        // Route to the shard tree's presence-only membership test instead of
        // the trait's `get(key).is_some()` default, which would clone the
        // value just to drop it.
        ShardedStore::contains(self, key)
    }

    fn len(&self) -> u64 {
        ShardedStore::len(self)
    }

    // The trait defaults are non-atomic get-then-write compositions; the
    // store owns a commit protocol, so it overrides both with the atomic
    // single-op-transactional-batch path.
    fn patch(&self, key: K, patch: PatchFn<V>) -> Option<V> {
        ShardedStore::patch(self, key, patch)
    }

    fn compare_and_set(&self, key: K, expect: Option<V>, value: V) -> bool {
        ShardedStore::compare_and_set(self, key, expect, value)
    }
}

impl<K, V, A> RangeRead<K, V> for ShardedStore<K, V, A>
where
    K: RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    type Agg = A::Agg;

    fn range_agg(&self, range: RangeSpec<K>) -> A::Agg {
        wft_api::agg_over(range, A::identity, |min, max| {
            ShardedStore::range_agg(self, min, max)
        })
    }

    fn count(&self, range: RangeSpec<K>) -> u64 {
        wft_api::count_over(
            range,
            |min, max| ShardedStore::range_agg(self, min, max),
            A::count_of,
            |min, max| ShardedStore::collect_range(self, min, max).len() as u64,
        )
    }

    fn collect_range(&self, range: RangeSpec<K>) -> Vec<(K, V)> {
        wft_api::collect_over(range, |min, max| {
            ShardedStore::collect_range(self, min, max)
        })
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> BatchApply<K, V> for ShardedStore<K, V, A> {
    fn apply_batch(&self, batch: Vec<StoreOp<K, V>>) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
        ShardedStore::apply_batch(self, batch)
    }
}

/// The store's scalar snapshot front is the **sum** of its per-shard
/// timestamp fronts. Per-shard watermarks are monotone, so the sum is
/// monotone and unchanged exactly when *no* shard advanced — which is all
/// a scalar validation sandwich needs. (Settling settles each shard in
/// turn; a shard that advances after its settle but before the sandwich
/// closes fails the final validation, same as in the vector-valued
/// [`crate::GlobalFront`] used by the store's native cross-shard reads,
/// which validates only the shards a range touches.)
///
/// The store deliberately does **not** take the [`wft_api::FrontSnapshot`]
/// marker, so the blanket [`wft_api::SnapshotRead`] does not apply — see
/// the native impl below for why.
impl<K: Key, V: Value, A: Augmentation<K, V>> TimestampFront for ShardedStore<K, V, A> {
    fn settle_front(&self) -> u64 {
        self.settled_front_sum()
    }

    fn front_advertised(&self) -> u64 {
        self.advertised_sum()
    }

    fn front_resolved(&self) -> u64 {
        self.resolved_sum()
    }
}

/// One scalar-sandwich snapshot read: entry validation (the summed front is
/// settled at — and unchanged since — the token, and no batch commit is in
/// flight), the *stitched* cut-free read, exit validation (sums unchanged
/// **and** no commit window opened across the read). Counts a store
/// snapshot retry when a performed read has to be discarded at the exit
/// check (entry rejection reads nothing and counts nothing).
///
/// The commit stamp closes the one hole watermark sums leave open: a
/// quiescent half-applied commit window (committer stalled between two
/// shards) holds the sums still, so the sum sandwich alone could validate
/// a read of a half-applied batch. No-commit-in-flight at entry plus
/// no-commit-started across the read excludes exactly that.
fn stitched_read_at<K, V, A, R>(
    store: &ShardedStore<K, V, A>,
    token: &SnapshotToken,
    read: impl FnOnce() -> R,
) -> Option<R>
where
    K: Key,
    V: Value,
    A: Augmentation<K, V>,
{
    let stamp = store.front.commit_stamp()?;
    if store.resolved_sum() != token.front() || store.advertised_sum() != token.front() {
        return None;
    }
    let out = read();
    if store.advertised_sum() == token.front() && store.front.commit_unchanged(stamp) {
        Some(out)
    } else {
        store.front.count_retry();
        wft_obs::trace::emit(wft_obs::TraceKind::SnapshotRetry, wft_obs::NO_SHARD);
        None
    }
}

/// The store's **native** [`SnapshotRead`], replacing the blanket impl the
/// store pointedly opts out of (no [`wft_api::FrontSnapshot`] marker).
///
/// Under the blanket, every `*_at` read validated the front **twice**: once
/// in the blanket's scalar sandwich, and once more inside the store's own
/// plain reads, which acquire and validate a per-shard [`crate::GlobalFront`]
/// cut with their own retry loop. The native impl runs the scalar sandwich
/// once, around the **stitched** per-shard reads (no cut machinery at all):
/// the summed advertised watermark is monotone and unchanged iff *no* shard
/// advanced, so an unchanged sum across the window proves every shard was
/// constant — the stitched read observed one global state, exactly the
/// blanket's window argument with the store's second validation layer
/// shaved off.
impl<K, V, A> SnapshotRead<K, V> for ShardedStore<K, V, A>
where
    K: RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    fn acquire_snapshot(&self) -> SnapshotToken {
        SnapshotToken::new(self.settled_front_sum())
    }

    fn snapshot_valid(&self, token: &SnapshotToken) -> bool {
        self.advertised_sum() == token.front()
    }

    fn range_agg_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<Self::Agg> {
        stitched_read_at(self, token, || {
            wft_api::agg_over(range, A::identity, |min, max| {
                self.stitched_range_agg(min, max)
            })
        })
    }

    fn count_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<u64> {
        stitched_read_at(self, token, || {
            wft_api::count_over(
                range,
                |min, max| self.stitched_range_agg(min, max),
                A::count_of,
                |min, max| self.stitched_collect_range(min, max).len() as u64,
            )
        })
    }

    fn collect_range_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<Vec<(K, V)>> {
        stitched_read_at(self, token, || {
            wft_api::collect_over(range, |min, max| self.stitched_collect_range(min, max))
        })
    }
}

/// Mirrors the store's observability surface into the `wft-obs` vocabulary:
/// the snapshot-front counters ([`ShardedStore::store_stats`]) under the
/// `store_` prefix, the cross-shard aggregated tree counters
/// ([`ShardedStore::tree_stats`]) under `store_tree_`, and the shard
/// topology as gauges. The legacy counter structs stay the source of truth;
/// this impl reads the same atomics, so the two views can never drift.
/// `store_len` is the stitched (cut-free) length — a metrics poll must not
/// spin the cut machinery.
impl<K: Key, V: Value, A: Augmentation<K, V>> wft_obs::MetricsSource for ShardedStore<K, V, A> {
    fn collect_metrics(&self, out: &mut wft_obs::MetricsSnapshot) {
        let stats = self.store_stats();
        out.push_counter("store_snapshot_acquires", stats.snapshot_acquires);
        out.push_counter("store_snapshot_retries", stats.snapshot_retries);
        out.push_counter("store_scan_resumes", stats.scan_resumes);
        out.push_counter("store_len_fallbacks", stats.len_fallbacks);
        out.push_counter("store_batch_commits", stats.batch_commits);
        out.push_counter("store_commit_gate_waits", stats.commit_gate_waits);
        self.tree_stats().collect_into("store_tree", out);
        out.push_gauge("store_shards", self.num_shards() as i64);
        out.push_gauge("store_len", self.stitched_len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_speaks_the_shared_api() {
        let store: ShardedStore<i64, i64> = ShardedStore::from_entries((0..100).map(|k| (k, k)), 4);
        assert!(!PointMap::insert(&store, 5, 0).is_applied());
        assert_eq!(
            PointMap::replace(&store, 5, 50),
            UpdateOutcome::Applied { prior: Some(5) }
        );
        assert_eq!(
            RangeRead::count(&store, RangeSpec::from_bounds(0..100)),
            100
        );
        assert_eq!(RangeRead::count(&store, RangeSpec::inclusive(50, 10)), 0);
        let outcomes =
            BatchApply::apply_batch(&store, vec![StoreOp::InsertOrReplace { key: 5, value: 51 }])
                .unwrap();
        assert_eq!(outcomes, vec![OpOutcome::Replaced(Some(50))]);
    }
}
