//! The global timestamp front: single-snapshot cross-shard reads.
//!
//! Every shard of a [`ShardedStore`](crate::ShardedStore) is a
//! `WaitFreeTree` with its own root queue, and since PR 4 every tree
//! maintains a **timestamp front**: an *advertised* watermark that advances
//! before an update's effect can be observed, and a *resolved* watermark
//! that trails it until the update's linearization completes
//! (`WaitFreeTree::{advertised_ts, stable_ts, settle_front}`). A
//! [`GlobalFront`] is one settled watermark per shard — a *cut* through the
//! store's per-shard linearization orders — and the store's cross-shard
//! reads are executed **at** such a cut:
//!
//! 1. **Acquire**: settle every touched shard's front
//!    (`settle_front`, helping any mid-linearization update to completion —
//!    lock-free) and record the per-shard watermarks; publish each into the
//!    store's monotone published-front table (a `fetch_max` per shard — the
//!    "front CAS", which can only move forward).
//! 2. **Read**: answer each shard's sub-query with the tree's ordinary
//!    linearizable range read, *front-validated* on both sides
//!    (`range_agg_at_front` / `collect_range_at_front`): the result is
//!    returned only if
//!    the shard's advertised watermark still equals the front.
//! 3. **Retry**: if any shard advanced past its front mid-read, the whole
//!    attempt is discarded and the read re-acquires a fresh cut.
//!
//! # Why a validated cut is a single snapshot
//!
//! Per shard `i`, `settle_front` observed an instant `t_i` with no update
//! mid-linearization and watermark `f_i`; the successful validation at the
//! end of the shard's sub-query observed `advertised == f_i` at some later
//! instant `v_i`. Watermarks are monotone and advance *before* visibility,
//! so shard `i`'s abstract state was constant — equal to its state at
//! `f_i` — throughout `[t_i, v_i]`. All acquisitions complete before any
//! sub-query starts, hence `max_i t_i <= min_i v_i`: at any instant in
//! between, **every** touched shard simultaneously held exactly its
//! front state. The combined result equals the store's state at that
//! instant — the read linearizes there. (Shards are independent; only the
//! watermark sandwich couples them, which is exactly what a
//! validated double-collect couples.)
//!
//! # Progress
//!
//! Acquisition is lock-free (settling helps the pending update), and a
//! validation failure implies a concurrent update linearized — so the
//! retry loop is lock-free but not wait-free: a sustained write storm on a
//! touched shard can starve a cross-shard reader. [`StoreStats`] exposes the
//! retry pressure; the non-linearizable pre-PR-4 behaviour remains available
//! as the explicitly named `stitched_*` reads for comparison and benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};

/// One settled watermark per shard: a cut through the store's per-shard
/// linearization orders, acquired by
/// [`ShardedStore::acquire_front`](crate::ShardedStore::acquire_front).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalFront {
    /// Per-shard settled watermarks (`fronts[i]` belongs to shard `i`).
    fronts: Box<[u64]>,
}

impl GlobalFront {
    pub(crate) fn new(fronts: Vec<u64>) -> Self {
        GlobalFront {
            fronts: fronts.into_boxed_slice(),
        }
    }

    /// The per-shard watermarks of the cut.
    pub fn fronts(&self) -> &[u64] {
        &self.fronts
    }

    /// Watermark of shard `i`.
    pub(crate) fn of(&self, shard: usize) -> u64 {
        self.fronts[shard]
    }

    /// Number of shards the cut covers (always the store's shard count).
    pub fn num_shards(&self) -> usize {
        self.fronts.len()
    }
}

/// Snapshot-front observability counters of a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Global-front acquisitions performed (one per cross-shard read
    /// attempt plus explicit [`acquire_front`] calls).
    ///
    /// [`acquire_front`]: crate::ShardedStore::acquire_front
    pub snapshot_acquires: u64,
    /// Cross-shard read attempts discarded because a shard advanced past
    /// its front mid-read (each implies a concurrent update linearized).
    pub snapshot_retries: u64,
    /// Streaming scan cursors that had to **re-anchor**: a chunk read found
    /// a touched shard advanced past the cursor's cut, so the not-yet-
    /// yielded suffix was re-read at a fresh front and the drain degraded
    /// to `ScanConsistency::Resumed`. High values mean cursor pagination is
    /// racing a write-heavy keyspace region.
    pub scan_resumes: u64,
    /// [`len()`](crate::ShardedStore::len) calls that exhausted their
    /// bounded cut attempts
    /// ([`LEN_CUT_ATTEMPTS`](crate::ShardedStore::LEN_CUT_ATTEMPTS)) and
    /// answered with the stitched (non-single-cut) sum. Non-zero means
    /// callers relying on `len()`'s linearizability received degraded
    /// answers under write pressure — point them at
    /// [`stitched_len()`](crate::ShardedStore::stitched_len) explicitly.
    pub len_fallbacks: u64,
}

/// The store-internal front bookkeeping: the monotone published front table
/// plus the counters behind [`StoreStats`].
pub(crate) struct FrontTable {
    /// The highest watermark ever *published* per shard. Written with
    /// `fetch_max` — the monotone front CAS: the published front can only
    /// move forward, so readers observing it see a lower bound on each
    /// shard's linearized prefix.
    published: Box<[AtomicU64]>,
    acquires: AtomicU64,
    retries: AtomicU64,
    scan_resumes: AtomicU64,
    len_fallbacks: AtomicU64,
}

impl FrontTable {
    pub(crate) fn new(shards: usize) -> Self {
        FrontTable {
            published: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            acquires: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            scan_resumes: AtomicU64::new(0),
            len_fallbacks: AtomicU64::new(0),
        }
    }

    /// Publishes a freshly settled watermark for `shard` (monotone).
    pub(crate) fn publish(&self, shard: usize, front: u64) {
        self.published[shard].fetch_max(front, Ordering::SeqCst);
    }

    /// The published (monotone) front vector.
    pub(crate) fn published(&self) -> Vec<u64> {
        self.published
            .iter()
            .map(|w| w.load(Ordering::SeqCst))
            .collect()
    }

    pub(crate) fn count_acquire(&self) {
        self.acquires.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_scan_resume(&self) {
        self.scan_resumes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_len_fallback(&self) {
        self.len_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> StoreStats {
        StoreStats {
            snapshot_acquires: self.acquires.load(Ordering::Relaxed),
            snapshot_retries: self.retries.load(Ordering::Relaxed),
            scan_resumes: self.scan_resumes.load(Ordering::Relaxed),
            len_fallbacks: self.len_fallbacks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_front_is_monotone() {
        let table = FrontTable::new(3);
        table.publish(1, 5);
        table.publish(1, 3); // older publish must not regress
        table.publish(2, 7);
        assert_eq!(table.published(), vec![0, 5, 7]);
    }

    #[test]
    fn stats_count_acquires_and_retries() {
        let table = FrontTable::new(1);
        table.count_acquire();
        table.count_acquire();
        table.count_retry();
        table.count_scan_resume();
        table.count_len_fallback();
        assert_eq!(
            table.stats(),
            StoreStats {
                snapshot_acquires: 2,
                snapshot_retries: 1,
                scan_resumes: 1,
                len_fallbacks: 1,
            }
        );
    }

    #[test]
    fn global_front_accessors() {
        let front = GlobalFront::new(vec![1, 2, 3]);
        assert_eq!(front.num_shards(), 3);
        assert_eq!(front.fronts(), &[1, 2, 3]);
        assert_eq!(front.of(2), 3);
    }
}
