//! The global timestamp front: single-snapshot cross-shard reads.
//!
//! Every shard of a [`ShardedStore`](crate::ShardedStore) is a
//! `WaitFreeTree` with its own root queue, and since PR 4 every tree
//! maintains a **timestamp front**: an *advertised* watermark that advances
//! before an update's effect can be observed, and a *resolved* watermark
//! that trails it until the update's linearization completes
//! (`WaitFreeTree::{advertised_ts, stable_ts, settle_front}`). A
//! [`GlobalFront`] is one settled watermark per shard — a *cut* through the
//! store's per-shard linearization orders — and the store's cross-shard
//! reads are executed **at** such a cut:
//!
//! 1. **Acquire**: settle every touched shard's front
//!    (`settle_front`, helping any mid-linearization update to completion —
//!    lock-free) and record the per-shard watermarks; publish each into the
//!    store's monotone published-front table (a `fetch_max` per shard — the
//!    "front CAS", which can only move forward).
//! 2. **Read**: answer each shard's sub-query with the tree's ordinary
//!    linearizable range read, *front-validated* on both sides
//!    (`range_agg_at_front` / `collect_range_at_front`): the result is
//!    returned only if
//!    the shard's advertised watermark still equals the front.
//! 3. **Retry**: if any shard advanced past its front mid-read, the whole
//!    attempt is discarded and the read re-acquires a fresh cut.
//!
//! # Why a validated cut is a single snapshot
//!
//! Per shard `i`, `settle_front` observed an instant `t_i` with no update
//! mid-linearization and watermark `f_i`; the successful validation at the
//! end of the shard's sub-query observed `advertised == f_i` at some later
//! instant `v_i`. Watermarks are monotone and advance *before* visibility,
//! so shard `i`'s abstract state was constant — equal to its state at
//! `f_i` — throughout `[t_i, v_i]`. All acquisitions complete before any
//! sub-query starts, hence `max_i t_i <= min_i v_i`: at any instant in
//! between, **every** touched shard simultaneously held exactly its
//! front state. The combined result equals the store's state at that
//! instant — the read linearizes there. (Shards are independent; only the
//! watermark sandwich couples them, which is exactly what a
//! validated double-collect couples.)
//!
//! # Progress
//!
//! Acquisition is lock-free (settling helps the pending update), and a
//! validation failure implies a concurrent update linearized — so the
//! retry loop is lock-free but not wait-free: a sustained write storm on a
//! touched shard can starve a cross-shard reader. [`StoreStats`] exposes the
//! retry pressure; the non-linearizable pre-PR-4 behaviour remains available
//! as the explicitly named `stitched_*` reads for comparison and benchmarks.
//!
//! Atomic cross-shard **batch commits** add one more coupling on top of the
//! cut: the per-shard commit gate documented on the crate-private
//! `FrontTable`. While a
//! commit window is open on a shard, point ops and cut acquisitions touching
//! that shard wait for its release — so batch effects become visible all at
//! once, never piecemeal (see `DESIGN.md`, "Publish-at-front batch commit").

use std::sync::atomic::{AtomicU64, Ordering};

/// One settled watermark per shard: a cut through the store's per-shard
/// linearization orders, acquired by
/// [`ShardedStore::acquire_front`](crate::ShardedStore::acquire_front).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalFront {
    /// Per-shard settled watermarks (`fronts[i]` belongs to shard `i`).
    fronts: Box<[u64]>,
}

impl GlobalFront {
    pub(crate) fn new(fronts: Vec<u64>) -> Self {
        GlobalFront {
            fronts: fronts.into_boxed_slice(),
        }
    }

    /// The per-shard watermarks of the cut.
    pub fn fronts(&self) -> &[u64] {
        &self.fronts
    }

    /// Watermark of shard `i`.
    pub(crate) fn of(&self, shard: usize) -> u64 {
        self.fronts[shard]
    }

    /// Number of shards the cut covers (always the store's shard count).
    pub fn num_shards(&self) -> usize {
        self.fronts.len()
    }
}

/// Snapshot-front observability counters of a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Global-front acquisitions performed (one per cross-shard read
    /// attempt plus explicit [`acquire_front`] calls).
    ///
    /// [`acquire_front`]: crate::ShardedStore::acquire_front
    pub snapshot_acquires: u64,
    /// Cross-shard read attempts discarded because a shard advanced past
    /// its front mid-read (each implies a concurrent update linearized).
    pub snapshot_retries: u64,
    /// Streaming scan cursors that had to **re-anchor**: a chunk read found
    /// a touched shard advanced past the cursor's cut, so the not-yet-
    /// yielded suffix was re-read at a fresh front and the drain degraded
    /// to `ScanConsistency::Resumed`. High values mean cursor pagination is
    /// racing a write-heavy keyspace region.
    pub scan_resumes: u64,
    /// [`len()`](crate::ShardedStore::len) calls that exhausted their
    /// bounded cut attempts
    /// ([`LEN_CUT_ATTEMPTS`](crate::ShardedStore::LEN_CUT_ATTEMPTS)) and
    /// answered with the stitched (non-single-cut) sum. Non-zero means
    /// callers relying on `len()`'s linearizability received degraded
    /// answers under write pressure — point them at
    /// [`stitched_len()`](crate::ShardedStore::stitched_len) explicitly.
    pub len_fallbacks: u64,
    /// Atomic cross-shard batch commits completed through the
    /// publish-at-front commit gate
    /// ([`apply_batch`](crate::ShardedStore::apply_batch) calls that took
    /// the gated path; single-op physical batches bypass it).
    pub batch_commits: u64,
    /// Point operations or cut acquisitions that found a commit window
    /// open on a shard they touch and had to wait for its release (counted
    /// once per blocked call, not per spin). High values mean large batch
    /// commits are stalling the point paths — shrink the batches or spread
    /// them over more shards.
    pub commit_gate_waits: u64,
}

/// The store-internal front bookkeeping: the monotone published front
/// table, the per-shard **commit gate** behind atomic cross-shard batches,
/// plus the counters behind [`StoreStats`].
///
/// # The commit gate
///
/// Each shard carries a seqlock-style `epoch` (even = open, odd = a batch
/// commit window is in progress) and a `writers` count of in-flight point
/// mutations. A gated commit acquires the epochs of every touched shard in
/// **ascending shard order** (CAS even → odd; ordered acquisition makes
/// concurrent commits deadlock-free), drains the touched shards' writers
/// to zero, applies the batch, settles + publishes the touched fronts, and
/// releases the epochs (odd → next even). Point mutations register in
/// `writers` *before* checking the epoch; point reads and cut acquisitions
/// sandwich their work between two matching even-epoch observations. Under
/// `SeqCst` this gives exclusion both ways: a writer that saw an open
/// epoch is visible to the committer's drain, and a committer that closed
/// the epoch is visible to the writer's check — so no point op and no
/// validated cut ever overlaps a commit window on a shard it touches.
///
/// The global `commits_started` / `commits_finished` pair is the scalar
/// flavour of the same sandwich, used by the token-based snapshot reads
/// that validate with watermark *sums* instead of per-shard cuts.
pub(crate) struct FrontTable {
    /// The highest watermark ever *published* per shard. Written with
    /// `fetch_max` — the monotone front CAS: the published front can only
    /// move forward, so readers observing it see a lower bound on each
    /// shard's linearized prefix.
    published: Box<[AtomicU64]>,
    /// Per-shard commit epoch: even = open, odd = commit window.
    epochs: Box<[AtomicU64]>,
    /// Per-shard count of in-flight point mutations.
    writers: Box<[AtomicU64]>,
    /// Commit windows ever opened (incremented before epoch acquisition).
    commits_started: AtomicU64,
    /// Commit windows fully released. `finished <= started` always;
    /// equality means no commit is in flight.
    commits_finished: AtomicU64,
    acquires: AtomicU64,
    retries: AtomicU64,
    scan_resumes: AtomicU64,
    len_fallbacks: AtomicU64,
    gate_waits: AtomicU64,
}

/// Bounded-friendly wait: spin briefly, then yield the core — commit
/// windows are short, but a preempted committer must not livelock the
/// waiters on small machines.
pub(crate) fn gate_backoff(spins: &mut u32) {
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
    *spins = spins.saturating_add(1);
}

impl FrontTable {
    pub(crate) fn new(shards: usize) -> Self {
        FrontTable {
            published: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            epochs: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            writers: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            commits_started: AtomicU64::new(0),
            commits_finished: AtomicU64::new(0),
            acquires: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            scan_resumes: AtomicU64::new(0),
            len_fallbacks: AtomicU64::new(0),
            gate_waits: AtomicU64::new(0),
        }
    }

    /// The shard's commit epoch if no commit window is open on it.
    pub(crate) fn epoch_open(&self, shard: usize) -> Option<u64> {
        // ORDERING: SeqCst epoch read — entry half of the read sandwich, ordered
        // against the committer's SeqCst epoch bumps.
        // wft-lint: allow(seqcst) -- the sandwich proof needs epoch reads and commit-window bumps in one total order.
        let epoch = self.epochs[shard].load(Ordering::SeqCst);
        epoch.is_multiple_of(2).then_some(epoch)
    }

    /// `true` when the shard's epoch still equals `epoch` — the closing
    /// half of the read sandwich.
    pub(crate) fn epoch_is(&self, shard: usize, epoch: u64) -> bool {
        // ORDERING: SeqCst re-read — unchanged means no commit window touched the
        // shard during the read; exit half of the sandwich.
        // wft-lint: allow(seqcst) -- same total-order argument as epoch_open.
        self.epochs[shard].load(Ordering::SeqCst) == epoch
    }

    /// Registers an in-flight point mutation on `shard`. Must happen
    /// *before* the epoch check (see the commit-gate invariant above).
    pub(crate) fn writer_enter(&self, shard: usize) {
        // ORDERING: SeqCst store half of the writer/committer Dekker handshake —
        // the register must be ordered before the epoch check that follows it.
        // wft-lint: allow(seqcst) -- store-load ordering against begin_commit's writers drain needs the single total order.
        self.writers[shard].fetch_add(1, Ordering::SeqCst);
    }

    /// Deregisters a point mutation (applied or backed off).
    pub(crate) fn writer_exit(&self, shard: usize) {
        // ORDERING: SeqCst keeps the deregister ordered after the shard mutation
        // in the same total order the commit gate's drain scan reads.
        // wft-lint: allow(seqcst) -- symmetric with writer_enter; the drain check relies on the single total order.
        self.writers[shard].fetch_sub(1, Ordering::SeqCst);
    }

    /// Opens a commit window: acquires every touched shard's epoch
    /// (ascending order — the caller passes `touched` sorted) and drains
    /// the touched shards' in-flight point mutations.
    pub(crate) fn begin_commit(&self, touched: &[usize]) {
        debug_assert!(touched.windows(2).all(|w| w[0] < w[1]));
        // ORDERING: SeqCst — `started` must be bumped before the epoch
        // acquisitions so a scalar-stamp reader never sees `finished == started`
        // mid-commit.
        // wft-lint: allow(seqcst) -- the commit_stamp sandwich needs the counter bumps and epoch writes in one total order.
        self.commits_started.fetch_add(1, Ordering::SeqCst);
        for &shard in touched {
            let mut spins = 0u32;
            let mut waited = false;
            loop {
                // ORDERING: SeqCst epoch read feeding the CAS below — part of the same
                // Dekker handshake.
                // wft-lint: allow(seqcst) -- the gate acquisition must see epoch bumps in the single total order.
                let epoch = self.epochs[shard].load(Ordering::SeqCst);
                // ORDERING: SeqCst CAS closes the commit window; the successful bump is
                // the store half of the Dekker handshake against `writer_enter`.
                // wft-lint: allow(seqcst) -- the epoch bump must be ordered before the writers drain scan below.
                if epoch.is_multiple_of(2)
                    && self.epochs[shard]
                        .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    break;
                }
                if !waited {
                    waited = true;
                    self.count_gate_wait();
                }
                gate_backoff(&mut spins);
            }
        }
        for &shard in touched {
            let mut spins = 0u32;
            // ORDERING: SeqCst load half of the Dekker handshake — pairs with
            // `writer_enter`/`writer_exit`.
            // wft-lint: allow(seqcst) -- a writer that missed our epoch bump must be visible to this drain scan.
            while self.writers[shard].load(Ordering::SeqCst) != 0 {
                gate_backoff(&mut spins);
            }
        }
    }

    /// Releases a commit window opened by [`begin_commit`](Self::begin_commit).
    pub(crate) fn end_commit(&self, touched: &[usize]) {
        for &shard in touched {
            // ORDERING: SeqCst reopens the shard in the same total order the read
            // sandwich uses.
            // wft-lint: allow(seqcst) -- pairs with the SeqCst epoch reads in epoch_open/epoch_is.
            self.epochs[shard].fetch_add(1, Ordering::SeqCst);
        }
        // ORDERING: SeqCst — `finished` is bumped after every epoch reopen, so a
        // stamp reader seeing `started == finished` sees the reopened shards.
        // wft-lint: allow(seqcst) -- commit_stamp sandwich argument.
        self.commits_finished.fetch_add(1, Ordering::SeqCst);
    }

    /// Entry half of the scalar commit sandwich: the commit counter when
    /// no commit is in flight, `None` otherwise.
    pub(crate) fn commit_stamp(&self) -> Option<u64> {
        // ORDERING: SeqCst — equality of the two counters proves no commit was in
        // flight at one point of the total order.
        // wft-lint: allow(seqcst) -- sandwich entry; needs the counter bumps in one total order.
        let started = self.commits_started.load(Ordering::SeqCst);
        // ORDERING: as above — the second SeqCst read of the sandwich entry.
        // wft-lint: allow(seqcst) -- same sandwich argument.
        let finished = self.commits_finished.load(Ordering::SeqCst);
        (started == finished).then_some(started)
    }

    /// Exit half of the scalar sandwich: no commit window opened since
    /// `stamp` was taken.
    pub(crate) fn commit_unchanged(&self, stamp: u64) -> bool {
        // ORDERING: SeqCst re-read — an unchanged `started` proves no commit
        // window opened since the stamp; sandwich exit.
        // wft-lint: allow(seqcst) -- same total-order argument as commit_stamp.
        self.commits_started.load(Ordering::SeqCst) == stamp
    }

    /// Publishes a freshly settled watermark for `shard` (monotone).
    pub(crate) fn publish(&self, shard: usize, front: u64) {
        // ORDERING: SeqCst monotone publish, ordered against the commit-gate bumps
        // that token validation also observes.
        // wft-lint: allow(seqcst) -- token-sum validation compares fronts across shards in one total order.
        self.published[shard].fetch_max(front, Ordering::SeqCst);
    }

    /// The published (monotone) front vector.
    pub(crate) fn published(&self) -> Vec<u64> {
        // ORDERING: SeqCst reads give a coherent lower bound across shards.
        // wft-lint: allow(seqcst) -- same total-order argument as publish.
        self.published
            .iter()
            .map(|w| w.load(Ordering::SeqCst))
            .collect()
    }

    pub(crate) fn count_acquire(&self) {
        self.acquires.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_scan_resume(&self) {
        self.scan_resumes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_len_fallback(&self) {
        self.len_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_gate_wait(&self) {
        self.gate_waits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> StoreStats {
        StoreStats {
            snapshot_acquires: self.acquires.load(Ordering::Relaxed),
            snapshot_retries: self.retries.load(Ordering::Relaxed),
            scan_resumes: self.scan_resumes.load(Ordering::Relaxed),
            len_fallbacks: self.len_fallbacks.load(Ordering::Relaxed),
            batch_commits: self.commits_finished.load(Ordering::Relaxed),
            commit_gate_waits: self.gate_waits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_front_is_monotone() {
        let table = FrontTable::new(3);
        table.publish(1, 5);
        table.publish(1, 3); // older publish must not regress
        table.publish(2, 7);
        assert_eq!(table.published(), vec![0, 5, 7]);
    }

    #[test]
    fn stats_count_acquires_and_retries() {
        let table = FrontTable::new(1);
        table.count_acquire();
        table.count_acquire();
        table.count_retry();
        table.count_scan_resume();
        table.count_len_fallback();
        table.count_gate_wait();
        table.begin_commit(&[0]);
        table.end_commit(&[0]);
        assert_eq!(
            table.stats(),
            StoreStats {
                snapshot_acquires: 2,
                snapshot_retries: 1,
                scan_resumes: 1,
                len_fallbacks: 1,
                batch_commits: 1,
                commit_gate_waits: 1,
            }
        );
    }

    #[test]
    fn commit_gate_closes_and_reopens_epochs() {
        let table = FrontTable::new(3);
        let e0 = table.epoch_open(0).expect("shard 0 starts open");
        table.begin_commit(&[0, 2]);
        assert_eq!(table.epoch_open(0), None, "touched shard is closed");
        assert_eq!(table.epoch_open(2), None);
        let e1 = table.epoch_open(1).expect("untouched shard stays open");
        assert!(table.epoch_is(1, e1));
        assert_eq!(table.commit_stamp(), None, "a commit is in flight");
        table.end_commit(&[0, 2]);
        let e0_after = table.epoch_open(0).expect("released shard reopens");
        assert_eq!(e0_after, e0 + 2, "each window advances the epoch by 2");
        let stamp = table.commit_stamp().expect("quiescent after release");
        assert!(table.commit_unchanged(stamp));
        table.begin_commit(&[1]);
        assert!(!table.commit_unchanged(stamp), "new window moves the stamp");
        table.end_commit(&[1]);
    }

    #[test]
    fn commit_waits_for_registered_writers() {
        // A writer registered before the window opens must block the
        // commit until it exits; one registered after sees a closed epoch.
        let table = std::sync::Arc::new(FrontTable::new(1));
        table.writer_enter(0);
        let bg = {
            let table = std::sync::Arc::clone(&table);
            std::thread::spawn(move || {
                table.begin_commit(&[0]);
                table.end_commit(&[0]);
            })
        };
        // Wait until the committer has closed the epoch; it must then park
        // in the writer drain for as long as the writer stays registered.
        while table.epoch_open(0).is_some() {
            std::hint::spin_loop();
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(
            !bg.is_finished(),
            "commit must not complete while a point writer is registered"
        );
        table.writer_exit(0);
        bg.join().unwrap();
        assert!(table.epoch_open(0).is_some());
    }

    #[test]
    fn global_front_accessors() {
        let front = GlobalFront::new(vec![1, 2, 3]);
        assert_eq!(front.num_shards(), 3);
        assert_eq!(front.fronts(), &[1, 2, 3]);
        assert_eq!(front.of(2), 3);
    }
}
