//! # `wft-store` — a sharded store layer over the wait-free tree
//!
//! The paper's [`WaitFreeTree`](wft_core::WaitFreeTree) gives wait-free
//! updates and `O(log N)` aggregate range queries on a *single* tree.
//! This crate scales that structure toward a serving system:
//!
//! * [`ShardedStore`] — a **range-partitioned** router over `S` independent
//!   tree shards. Partitioning by key range (not by hash) keeps aggregate
//!   range queries local to the shards their interval overlaps and makes
//!   cross-shard `collect_range` results globally sorted for free.
//! * [`StoreOp`] / [`ShardedStore::apply_batch`] — a **two-phase batch
//!   API** in the style of GroveDB's `apply_batch`: phase one validates the
//!   whole batch and groups it by destination shard without touching any
//!   tree, phase two fans the per-shard groups out (across threads for
//!   large batches). A batch that fails validation is rejected before any
//!   mutation.
//! * [`split_keys_from_sample`] — balanced shard-boundary selection from a
//!   sampled key distribution (equi-depth quantiles), used by
//!   [`ShardedStore::from_entries`].
//! * [`GlobalFront`] — the **global timestamp front** (see [`front`]):
//!   cross-shard `count` / `range_agg` / `collect_range` acquire one
//!   settled per-shard watermark cut and read every touched shard at it,
//!   making them linearizable, and [`wft_api::SnapshotRead`] exposes
//!   consistent multi-range snapshot reads on top. `len` takes the same
//!   discipline with a bounded number of cut attempts, falling back to the
//!   stitched sum (counted in [`StoreStats::len_fallbacks`]) under
//!   sustained write traffic. The pre-front behaviour remains available as
//!   the `stitched_*` reads.
//! * [`StoreScanCursor`] — the store's native [`wft_api::RangeScan`] (see
//!   [`scan`]): streaming snapshot-consistent cursors that drain a range in
//!   caller-bounded chunks, shard after shard in key order, validated
//!   per-chunk against one cut.
//!
//! ## Example
//!
//! ```
//! use wft_store::{ShardedStore, StoreOp};
//!
//! // 4 shards, boundaries picked from the loaded key distribution.
//! let store: ShardedStore<i64> =
//!     ShardedStore::from_entries((0..1000).map(|k| (k, ())), 4);
//! assert_eq!(store.num_shards(), 4);
//!
//! // Two-phase batch: validated, grouped by shard, then applied.
//! let outcomes = store
//!     .apply_batch(vec![
//!         StoreOp::Insert { key: 2000, value: () },
//!         StoreOp::Remove { key: 3 },
//!     ])
//!     .unwrap();
//! assert_eq!(outcomes.len(), 2);
//!
//! // Aggregate range queries split at shard boundaries and combine:
//! // 1000 loaded keys, minus the removed key 3, plus the new key 2000.
//! assert_eq!(store.count(0, 2000), 1000 - 1 + 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod api;
pub mod front;
mod op;
pub mod scan;
mod store;

pub use front::{GlobalFront, StoreStats};
pub use op::{BatchError, OpOutcome, StoreConfig, StoreOp};
pub use scan::StoreScanCursor;
pub use store::{split_keys_from_sample, BatchPlan, ShardedStore};

// Re-export the shared trait family the store implements (the batch
// vocabulary above is likewise defined in `wft-api` and re-exported here).
pub use wft_api::{
    BatchApply, PointMap, RangeRead, RangeScan, RangeSpec, ScanConsistency, ScanCursor,
    SnapshotRead, SnapshotToken, TimestampFront, UpdateOutcome,
};

// Re-export the augmentation vocabulary so store users need one import.
pub use wft_seq::{Augmentation, Key, Pair, Size, Sum, Value};
