//! The store's native streaming scan: a cross-shard merge cursor at one
//! [`GlobalFront`](crate::GlobalFront)-style cut.
//!
//! The blanket [`wft_api::RangeScan`] cursor would work on the store (it is
//! a `RangeRead + TimestampFront`), but poorly: the scalar-sum front settles
//! **every** shard per chunk and invalidates on a write to **any** shard,
//! even one the scan never touches. [`StoreScanCursor`] does what the
//! store's one-shot cross-shard reads already do — per-shard watermarks —
//! and streams on top of them:
//!
//! * **Open** (`RangeScan::scan`): settle one watermark per shard — a cut,
//!   acquired exactly like [`ShardedStore::acquire_front`] — and remember
//!   the closed scan range. No entries are read yet.
//! * **Chunk** (`next_chunk(limit)`): range partitioning makes the
//!   cross-shard merge a concatenation — shards cover disjoint ascending
//!   key slices — so the cursor simply drains the shard owning the resume
//!   key with the tree's `O(log n + limit)` front-validated chunk read
//!   (`collect_range_limited_at_front` at the shard's cut watermark) and
//!   steps into the next shard when the current one runs dry before the
//!   chunk fills.
//! * **Validate / resume**: a chunk read returns `None` when its shard
//!   advanced past the cut. The cursor then re-settles the watermarks of
//!   the **not-yet-drained shards only** (fully drained shards are never
//!   revisited — keyset pagination), degrades to
//!   [`ScanConsistency::Resumed`], bumps
//!   [`StoreStats::scan_resumes`](crate::StoreStats::scan_resumes) and
//!   retries the failed shard. Writes to already-drained shards or to
//!   shards outside the range never disturb the scan — and while nothing
//!   has been yielded at all, an expiry re-acquires a whole fresh cut (and
//!   token) instead of degrading, **rewinding the merge to the resume
//!   key**: an empty prefix is a snapshot of any state, but shards already
//!   stepped over were drained dry at the old cut and may hold entries at
//!   the new one, so every touched shard is re-read at the fresh cut.
//!   These fresh-cut restarts are **bounded** (`PRE_YIELD_RESTARTS`):
//!   each one discards the whole pass, so under sustained write traffic an
//!   unbounded restart loop would starve the first chunk forever. Past the
//!   bound the cursor degrades to `Resumed` exactly like a post-yield
//!   expiry and keeps its progress — `next_chunk` always terminates; what
//!   remains lock-free-not-wait-free is only the per-shard read retry
//!   (each retry implies a concurrent update linearized), exactly as
//!   [`wft_api::ScanCursor::next_chunk`]'s contract states.
//!
//! # Consistency
//!
//! All watermarks are settled before the first chunk is read. While the
//! drain stays [`ScanConsistency::Snapshot`], every per-shard read
//! validated against the *original* cut, so (per the overlap-window
//! argument in [`crate::front`]) each touched shard's state was constant —
//! equal to its cut state — from acquisition until its drain completed. At
//! the instant acquisition finished, every touched shard therefore held
//! exactly the state the scan reports: the full drain equals one
//! `collect_range` of the store at that instant, no matter how many chunks
//! (or how much wall-clock time) it took. This validates strictly less
//! eagerly than the store's scalar [`SnapshotToken`] sandwich — only the
//! *touched, not-yet-drained* shards can expire the cursor — so a
//! `Snapshot` drain may outlive the scalar token it reports.

use std::collections::VecDeque;

use wft_api::{RangeKey, RangeScan, RangeSpec, ScanConsistency, ScanCursor, SnapshotToken};
use wft_core::Timestamp;
use wft_seq::{Augmentation, Value};

use crate::store::ShardedStore;

/// Upper bound on the cursor's adaptive read-ahead target (see the field
/// docs on [`StoreScanCursor`]); mirrors the shared `FrontScanCursor` cap.
const READAHEAD_CAP: usize = 4096;

/// How many pre-yield fresh-cut re-acquisitions a cursor performs before it
/// stops discarding progress and degrades to [`ScanConsistency::Resumed`]
/// like any post-yield expiry. Each restart throws the whole pass away, so
/// under sustained write traffic an unbounded restart loop can starve the
/// first chunk forever (every expiry implies a concurrent update linearized
/// — lock-free, not wait-free); the bound makes `next_chunk` terminating,
/// with the degradation reported honestly through the consistency label.
const PRE_YIELD_RESTARTS: u64 = 16;

/// The store's streaming cursor: shard-by-shard keyset pagination at one
/// per-shard watermark cut. Produced by `RangeScan::scan` on
/// [`ShardedStore`]; see the [module docs](self).
pub struct StoreScanCursor<'a, K: RangeKey, V: Value, A: Augmentation<K, V>> {
    store: &'a ShardedStore<K, V, A>,
    /// Per-shard cut watermarks (`cut[i]` belongs to shard `i`). Entries of
    /// not-yet-drained shards are refreshed on resume; drained shards keep
    /// their original watermark (they are never read again).
    cut: Vec<u64>,
    /// The scalar token reported to callers: the sum of the cut the drain
    /// is anchored at (the store's `SnapshotRead` front shape). Refreshed
    /// together with the whole cut by pre-yield re-acquires.
    token: SnapshotToken,
    /// Inclusive upper end of the scan range.
    hi: K,
    /// Index of the shard owning `hi` (shard bounds are static).
    last_shard: usize,
    /// Lower bound of the next *merge pass* — the first key neither
    /// yielded nor buffered; `None` once the merge is exhausted.
    resume: Option<K>,
    /// Validated entries read ahead of the caller: each buffered entry came
    /// from a per-shard read validated against the cut, exactly like a
    /// directly yielded one. A pre-yield cut expiry discards the buffer and
    /// rewinds `resume` over it (the `Snapshot` claim never rests on reads
    /// validated at a dead cut); after the first yield — or once the
    /// restart bound is spent — the buffer survives expiries, as `Resumed`
    /// promises per-read validation only.
    buffer: VecDeque<(K, V)>,
    /// Adaptive read-ahead target: doubles (capped at [`READAHEAD_CAP`])
    /// after every merge pass that validated throughout, resets to 0 on any
    /// cut expiry — small caller chunks amortise into few large merge
    /// passes while the touched shards are quiet, and shrink back to
    /// exactly-requested reads under churn.
    readahead: usize,
    /// Whether any entry has been yielded to the caller yet. While not, a
    /// cut expiry re-acquires the *whole* cut (and refreshes the token)
    /// instead of degrading to `Resumed` — an empty prefix is trivially a
    /// snapshot of any state.
    yielded: bool,
    /// Pre-yield fresh-cut re-acquisitions performed so far; at
    /// [`PRE_YIELD_RESTARTS`] the cursor stops discarding and degrades to
    /// `Resumed` instead, so a chunk always terminates.
    restarts: u64,
    consistency: ScanConsistency,
    resumes: u64,
}

impl<'a, K, V, A> StoreScanCursor<'a, K, V, A>
where
    K: RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    pub(crate) fn new(store: &'a ShardedStore<K, V, A>, range: RangeSpec<K>) -> Self {
        // Settle every shard exactly like `acquire_front` (publishing into
        // the monotone front table, epoch-stable so the cut cannot split an
        // atomic batch commit); the scalar token is the cut's sum.
        let cut = store.settle_all_stable();
        let token = SnapshotToken::new(cut.iter().sum());
        let (resume, hi) = match range.to_closed() {
            Some((lo, hi)) => (Some(lo), hi),
            None => (None, K::MIN_KEY),
        };
        let last_shard = store.shard_of(&hi);
        StoreScanCursor {
            store,
            cut,
            token,
            hi,
            last_shard,
            resume,
            buffer: VecDeque::new(),
            readahead: 0,
            yielded: false,
            restarts: 0,
            consistency: ScanConsistency::Snapshot,
            resumes: 0,
        }
    }

    /// One merge pass at the current cut: reads the caller's shortfall
    /// (widened to the adaptive read-ahead target) into the buffer, shard
    /// after shard in key order. Post-yield cut expiries re-settle the
    /// suffix shards and keep merging (`Resumed`); a pre-yield expiry
    /// rewinds the whole cursor to a fresh cut and returns for a clean
    /// retry.
    fn fill(&mut self, limit: usize) {
        let Some(lo) = self.resume else {
            return;
        };
        let target = limit
            .saturating_sub(self.buffer.len())
            .max(self.readahead)
            .max(1);
        let mut out: Vec<(K, V)> = Vec::new();
        let mut shard = self.store.shard_of(&lo);
        let mut shard_lo = lo;
        let mut expired = false;
        while out.len() < target && shard <= self.last_shard {
            let want = target - out.len();
            match self.store.shards[shard].collect_range_limited_at_front(
                shard_lo,
                self.hi,
                want,
                Timestamp(self.cut[shard]),
            ) {
                Some(chunk) => {
                    let drained_dry = chunk.len() < want;
                    out.extend(chunk);
                    if drained_dry {
                        // This shard's suffix is exhausted at the cut; step
                        // into the next shard's slice. `bounds[shard]` is the
                        // first key the next shard owns, and it exceeds every
                        // key yielded so far (slices ascend).
                        shard += 1;
                        if shard <= self.last_shard {
                            shard_lo = self.store.bounds[shard - 1];
                        }
                    }
                }
                None => {
                    // The shard advanced past its cut watermark.
                    if self.yielded || self.restarts >= PRE_YIELD_RESTARTS {
                        // Re-settle the not-yet-drained suffix shards only
                        // (drained shards are never read again) and retry
                        // this shard; the drain is no longer a single
                        // snapshot. Entries of earlier shards already in
                        // `out` (and in the read-ahead buffer) stay: the
                        // caller has accepted `Resumed` semantics, where
                        // one chunk may stitch per-shard reads taken at
                        // different cuts (documented in `wft_api::scan`).
                        let fresh = self.store.settle_touched_stable(shard, self.last_shard);
                        self.cut[shard..=self.last_shard].copy_from_slice(&fresh);
                        self.store.front.count_scan_resume();
                        wft_obs::trace::emit(
                            wft_obs::TraceKind::ScanResume,
                            crate::store::shard_trace_arg(shard),
                        );
                        self.consistency = ScanConsistency::Resumed;
                        self.resumes += 1;
                        expired = true;
                    } else {
                        // Nothing yielded to the caller yet: discard the
                        // partial pass AND the read-ahead buffer, acquire a
                        // whole fresh cut and make it the cursor's anchor —
                        // the drain stays `Snapshot` against the new token,
                        // exactly as the `ScanCursor` contract promises for
                        // pre-yield failures. The merge rewinds to the
                        // first key the caller has not seen (the front of
                        // the buffer, else this pass's resume key): shards
                        // already stepped over, partially read, or buffered
                        // were drained at the OLD cut, and the new cut may
                        // have landed keys in them — a `Snapshot` drain
                        // owes the new token every one of those entries.
                        // The discarded attempt counts as a snapshot retry
                        // (not a scan resume), attributed to the shard that
                        // expired the cut. Restarts are bounded by
                        // `PRE_YIELD_RESTARTS`; past it the expiry above
                        // degrades to `Resumed` instead of discarding, so
                        // the first chunk cannot be starved forever.
                        self.restarts += 1;
                        self.store.note_snapshot_retry(shard);
                        out.clear();
                        let restart = self.buffer.front().map(|(k, _)| *k).unwrap_or(lo);
                        self.buffer.clear();
                        self.cut = self.store.settle_all_stable();
                        self.token = SnapshotToken::new(self.cut.iter().sum());
                        self.resume = Some(restart);
                        self.readahead = 0;
                        std::hint::spin_loop();
                        return;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        // Commit the pagination point: a short pass proves exhaustion, a
        // full one resumes strictly after its last key. A pass that
        // validated throughout earns a doubled read-ahead target.
        self.resume = if out.len() < target {
            None
        } else {
            out.last()
                .and_then(|(k, _)| k.successor())
                .filter(|next| *next <= self.hi)
        };
        self.buffer.extend(out);
        self.readahead = if expired {
            0
        } else {
            target.saturating_mul(2).min(READAHEAD_CAP)
        };
    }
}

impl<K, V, A> ScanCursor<K, V> for StoreScanCursor<'_, K, V, A>
where
    K: RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    fn next_chunk(&mut self, limit: usize) -> Vec<(K, V)> {
        if limit == 0 {
            return Vec::new();
        }
        // Top the buffer up to the caller's chunk (each fill is one merge
        // pass at the current cut — possibly wider than the shortfall, per
        // the adaptive read-ahead), then hand out exactly `limit` entries.
        while self.buffer.len() < limit && self.resume.is_some() {
            self.fill(limit);
        }
        let take = limit.min(self.buffer.len());
        let chunk: Vec<(K, V)> = self.buffer.drain(..take).collect();
        self.yielded |= !chunk.is_empty();
        chunk
    }

    fn token(&self) -> SnapshotToken {
        self.token
    }

    fn consistency(&self) -> ScanConsistency {
        self.consistency
    }

    fn resumes(&self) -> u64 {
        self.resumes
    }

    fn is_exhausted(&self) -> bool {
        self.resume.is_none() && self.buffer.is_empty()
    }
}

/// The store's native [`RangeScan`]: the per-shard-cut streaming merge
/// above instead of the shared scalar-front `FrontScanCursor`, so writes
/// to untouched or already-drained shards never disturb a scan.
impl<K, V, A> RangeScan<K, V> for ShardedStore<K, V, A>
where
    K: RangeKey,
    V: Value,
    A: Augmentation<K, V>,
{
    type Cursor<'a>
        = StoreScanCursor<'a, K, V, A>
    where
        Self: 'a;

    fn scan(&self, range: RangeSpec<K>) -> StoreScanCursor<'_, K, V, A> {
        StoreScanCursor::new(self, range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wft_api::RangeRead;

    fn store_with_shards(shards: usize, keys: i64) -> ShardedStore<i64> {
        ShardedStore::from_entries((0..keys).map(|k| (k, ())), shards)
    }

    #[test]
    fn cursor_pages_across_shard_boundaries_in_order() {
        let store = store_with_shards(4, 1000);
        let mut cursor = store.scan(RangeSpec::inclusive(100, 899));
        let mut seen = Vec::new();
        loop {
            let chunk = cursor.next_chunk(64);
            if chunk.is_empty() {
                break;
            }
            assert!(chunk.len() <= 64);
            seen.extend(chunk.into_iter().map(|(k, ())| k));
        }
        assert_eq!(seen, (100..=899).collect::<Vec<_>>());
        assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
        assert_eq!(cursor.resumes(), 0);
        assert!(cursor.is_exhausted());
    }

    #[test]
    fn chunk_limit_one_and_oversized_limits_work() {
        let store = store_with_shards(3, 30);
        let mut cursor = store.scan(RangeSpec::inclusive(25, 40));
        assert_eq!(cursor.next_chunk(1), vec![(25, ())]);
        assert_eq!(cursor.next_chunk(1), vec![(26, ())]);
        // A limit far beyond the remaining answer drains and exhausts.
        assert_eq!(cursor.next_chunk(1000).len(), 3);
        assert!(cursor.is_exhausted());
        assert!(cursor.next_chunk(10).is_empty());
    }

    #[test]
    fn writes_to_drained_or_untouched_shards_keep_the_snapshot() {
        let store = store_with_shards(4, 400);
        let bounds = store.boundaries().to_vec();
        let mut cursor = store.scan(RangeSpec::inclusive(0, bounds[2] - 1));
        // Drain shard 0 completely.
        let first_slice = cursor.next_chunk(bounds[0] as usize);
        assert_eq!(first_slice.len(), bounds[0] as usize);
        // Write into the already-drained shard 0 and the untouched shard 3.
        store.insert(-100, ());
        store.insert(5000, ());
        // The cursor still drains shards 1 and 2 as a snapshot: only
        // not-yet-drained touched shards can expire it.
        let rest = cursor.drain(64);
        assert_eq!(rest.len(), (bounds[2] - bounds[0]) as usize);
        assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
        assert_eq!(store.store_stats().scan_resumes, 0);
    }

    #[test]
    fn write_ahead_of_the_cursor_resumes_and_is_observed() {
        let store = store_with_shards(4, 400);
        let mut cursor = store.scan(RangeSpec::all());
        let first = cursor.next_chunk(10);
        assert_eq!(first.len(), 10);
        // Update keys ahead of the resume point, in a not-yet-drained
        // shard: the cursor must re-anchor and then report the new state.
        store.remove(&395);
        store.insert(1000, ());
        let rest = cursor.drain(64);
        assert_eq!(cursor.consistency(), ScanConsistency::Resumed);
        assert!(cursor.resumes() > 0);
        assert!(store.store_stats().scan_resumes > 0);
        let keys: Vec<i64> = rest.iter().map(|(k, ())| *k).collect();
        assert!(keys.contains(&1000), "the resumed suffix sees the insert");
        // Still strictly ascending and duplicate-free past the first chunk.
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys[0] > first.last().unwrap().0);
    }

    #[test]
    fn pre_yield_reanchor_rewinds_over_stepped_shards() {
        // Regression: a pre-yield cut expiry must rewind the merge to the
        // resume key. Without the rewind, a shard whose in-range slice was
        // empty at the old cut stays stepped-over after the fresh cut is
        // acquired, and a drain reported `Snapshot` can yield a later write
        // (key 350) while missing an earlier one (key 50) that landed in
        // the stepped-over shard. The writer inserts 50 strictly before
        // 350, so any `Snapshot` listing containing 350 must contain 50.
        for _ in 0..300 {
            let store: ShardedStore<i64> = ShardedStore::with_boundaries(vec![100, 200, 300]);
            for k in 300..340 {
                store.insert(k, ());
            }
            let barrier = std::sync::Barrier::new(2);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    barrier.wait();
                    store.insert(50, ()); // shard 0: empty at the open cut
                    store.insert(350, ()); // shard 3: expires the cut mid-merge
                });
                let mut cursor = store.scan(RangeSpec::inclusive(0, 400));
                barrier.wait();
                let keys: Vec<i64> = cursor.drain(1000).iter().map(|(k, ())| *k).collect();
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted: {keys:?}");
                if cursor.consistency() == ScanConsistency::Snapshot && keys.contains(&350) {
                    assert!(
                        keys.contains(&50),
                        "Snapshot drain yields 350 (written after 50) but misses 50: {keys:?}"
                    );
                }
            });
        }
    }

    #[test]
    fn scan_snapshot_driver_matches_collect_range() {
        let store = store_with_shards(5, 500);
        let entries = RangeScan::scan_snapshot(&store, RangeSpec::from_bounds(50..450), 32);
        assert_eq!(
            entries,
            RangeRead::collect_range(&store, RangeSpec::from_bounds(50..450))
        );
    }

    #[test]
    fn empty_and_inverted_ranges_scan_nothing() {
        let store = store_with_shards(3, 100);
        let (entries, consistency) = store.scan_collect(RangeSpec::inclusive(80, 20), 16);
        assert!(entries.is_empty());
        assert_eq!(consistency, ScanConsistency::Snapshot);
        let mut cursor = store.scan(RangeSpec::from_bounds(7..7));
        assert!(cursor.is_exhausted());
        assert!(cursor.next_chunk(8).is_empty());
    }
}
