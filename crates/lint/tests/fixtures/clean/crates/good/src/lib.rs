//! A fully compliant fixture crate: every rule of the audit is
//! exercised and satisfied. Never compiled — scanned only.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Good {
    retries: AtomicU64,
    hits: AtomicU64,
}

impl Good {
    // SAFETY comment attached from above.
    pub fn documented_unsafe(ptr: *const u64) -> u64 {
        // SAFETY: the caller guarantees `ptr` is valid and aligned.
        unsafe { *ptr }
    }

    pub fn documented_unsafe_trailing(ptr: *const u64) -> u64 {
        unsafe { *ptr } // SAFETY: caller contract, see `documented_unsafe`.
    }

    pub fn documented_acquire(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release bump in `record_hit`.
        self.retries.load(Ordering::Acquire)
    }

    pub fn documented_seqcst(&self) -> u64 {
        // ORDERING: total order with every other watermark observer.
        // wft-lint: allow(seqcst) -- cross-observer agreement needs a total order.
        self.retries.load(Ordering::SeqCst)
    }

    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        // ORDERING: Release publishes the hit to `documented_acquire`.
        self.retries.fetch_add(1, Ordering::Release);
    }

    // A denied API survives through an individually reviewed waiver.
    pub fn reviewed_sleep(&self) {
        // wft-lint: allow(forbidden-api) -- fixture: test-only backoff, not an operation path.
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Decoys that must not confuse the scanner.
    pub fn decoys(&self) -> &'static str {
        /* unsafe { Ordering::SeqCst } thread::sleep */
        r#"unsafe { louder } and Ordering::Acquire and thread::sleep"#
    }
}

// `live_metric` is backed by `hits`, which `record_hit` bumps in-crate.
impl MetricsSource for Good {
    fn collect_metrics(&self, out: &mut MetricsSnapshot) {
        out.push_counter("live_metric", self.hits.load(Ordering::Relaxed));
    }
}
