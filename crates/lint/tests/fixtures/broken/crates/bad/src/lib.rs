//! A deliberately non-compliant fixture crate: every rule of the audit
//! must fire at least once on this file. Never compiled — scanned only.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Bad {
    retries: AtomicU64,
    hits: AtomicU64,
}

impl Bad {
    // Rule 1: an unsafe block with no SAFETY comment at all.
    pub fn undocumented_unsafe(ptr: *const u64) -> u64 {
        unsafe { *ptr }
    }

    // Rule 2: a non-Relaxed ordering with no ORDERING comment.
    pub fn undocumented_acquire(&self) -> u64 {
        self.retries.load(Ordering::Acquire)
    }

    // Rule 2 (SeqCst flavour): an ORDERING comment alone is not enough —
    // SeqCst additionally needs an explicit waiver.
    pub fn seqcst_without_waiver(&self) -> u64 {
        // ORDERING: claims a total order but carries no waiver.
        self.retries.load(Ordering::SeqCst)
    }

    // Rule 3: a denied API with neither allow-within-line nor waiver.
    pub fn blocks(&self) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Decoys: the literal and the comment below must NOT satisfy or
    // trigger any rule — the lexer strips strings and comments first.
    pub fn decoys(&self) -> &'static str {
        /* unsafe { Ordering::SeqCst } thread::sleep */
        r#"unsafe { louder } and Ordering::Acquire and thread::sleep"#
    }
}

// Rule 4: `dead_metric` is reported but nothing in this crate ever
// bumps `hits` — dead telemetry.
impl MetricsSource for Bad {
    fn collect_metrics(&self, out: &mut MetricsSnapshot) {
        out.push_counter("dead_metric", self.hits.load(Ordering::Relaxed));
    }
}
