//! Self-tests over the checked-in fixture workspaces in
//! `tests/fixtures/`: the broken fixture must trip every rule (and make
//! the binary exit nonzero), the clean fixture must pass with its
//! waivers inventoried.

use std::path::PathBuf;
use std::process::Command;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn audit(name: &str) -> wft_lint::Outcome {
    let root = fixture_root(name);
    let cfg = wft_lint::load_config(&root).expect("fixture lint.toml parses");
    wft_lint::run(&root, &cfg).expect("fixture tree scans")
}

#[test]
fn broken_fixture_trips_every_rule() {
    let outcome = audit("broken");
    assert!(!outcome.clean());
    let rules: Vec<&str> = outcome.violations.iter().map(|v| v.rule).collect();
    for expected in [
        "undocumented-unsafe",
        "undocumented-ordering",
        "seqcst",
        "forbidden-api",
        "metrics-liveness",
    ] {
        assert!(
            rules.contains(&expected),
            "rule {expected} did not fire on the broken fixture; fired: {rules:?}"
        );
    }
    for v in &outcome.violations {
        assert_eq!(v.path, "crates/bad/src/lib.rs");
    }
}

#[test]
fn broken_fixture_decoys_do_not_add_violations() {
    // One violation per seeded defect and none from the string/comment
    // decoys: unsafe, Acquire, SeqCst, sleep, dead metric.
    let outcome = audit("broken");
    assert_eq!(
        outcome.violations.len(),
        5,
        "unexpected violation set: {:#?}",
        outcome.violations
    );
}

#[test]
fn clean_fixture_passes_with_waivers_inventoried() {
    let outcome = audit("clean");
    assert!(
        outcome.clean(),
        "clean fixture must audit clean: {:#?}",
        outcome.violations
    );
    // Both escape hatches show up in the waiver inventory.
    let rules: Vec<&str> = outcome.waivers.iter().map(|w| w.rule.as_str()).collect();
    assert!(rules.contains(&"seqcst"));
    assert!(rules.contains(&"forbidden-api"));
    // The compliant sites are inventoried (two unsafe derefs, the
    // Acquire/Release/SeqCst lines).
    assert_eq!(outcome.unsafe_sites.len(), 2);
    assert!(outcome.ordering_sites.len() >= 3);
}

#[test]
fn binary_exits_nonzero_on_broken_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_wft-lint");
    let broken = Command::new(bin)
        .args(["--check", "--root"])
        .arg(fixture_root("broken"))
        .output()
        .expect("wft-lint runs");
    assert!(
        !broken.status.success(),
        "wft-lint must exit nonzero on the broken fixture"
    );
    let clean = Command::new(bin)
        .args(["--check", "--root"])
        .arg(fixture_root("clean"))
        .output()
        .expect("wft-lint runs");
    assert!(
        clean.status.success(),
        "wft-lint must exit zero on the clean fixture: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
}
