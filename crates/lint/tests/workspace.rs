//! The audit over the real workspace: zero violations, no unsafe-rule
//! waivers anywhere, and the committed `ANALYSIS.md` in sync with what
//! the scanner would regenerate.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

fn audit() -> wft_lint::Outcome {
    let root = workspace_root();
    let cfg = wft_lint::load_config(&root).expect("lint.toml parses");
    wft_lint::run(&root, &cfg).expect("workspace scans")
}

#[test]
fn workspace_audits_clean() {
    let outcome = audit();
    assert!(
        outcome.clean(),
        "the workspace must audit clean; violations:\n{}",
        outcome
            .violations
            .iter()
            .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_unsafe_site_is_argued_not_waived() {
    // The acceptance bar for the SAFETY backfill: zero waivers for the
    // undocumented-unsafe rule — every site carries a real argument.
    let outcome = audit();
    let unsafe_waivers: Vec<_> = outcome
        .waivers
        .iter()
        .filter(|w| w.rule == "undocumented-unsafe")
        .collect();
    assert!(
        unsafe_waivers.is_empty(),
        "unsafe sites must be documented, never waived: {unsafe_waivers:#?}"
    );
    assert!(
        !outcome.unsafe_sites.is_empty(),
        "the inventory should list the workspace's unsafe sites"
    );
}

#[test]
fn committed_analysis_is_current() {
    // Local twin of the CI regenerate-and-diff gate: a code change that
    // shifts the concurrency surface must re-run
    // `cargo run -p wft-lint --release` and commit the result.
    let outcome = audit();
    let rendered = wft_lint::report::render(&outcome);
    let committed = std::fs::read_to_string(workspace_root().join("ANALYSIS.md"))
        .expect("ANALYSIS.md is committed at the workspace root");
    assert!(
        rendered == committed,
        "ANALYSIS.md is stale — regenerate it with `cargo run -p wft-lint --release`"
    );
}
