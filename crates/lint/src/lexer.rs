//! A hand-rolled Rust surface lexer.
//!
//! The audit rules need to know, for every source line, *what is code*
//! and *what is commentary* — nothing more. A full parse (syn) would be
//! overkill and would drag a heavyweight dependency into a workspace
//! whose philosophy is vendored shims; the lint only has to be exact
//! about the four lexical shapes that can make naive text search lie:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments
//!   (`/* /* */ */` — Rust block comments nest),
//! * string literals (`"..."` with escapes) and byte strings,
//! * raw strings (`r"..."`, `r#"..."#`, … with any number of `#`s) and
//!   raw byte strings,
//! * char literals (`'x'`, `'\n'`) versus lifetimes (`'a`), which share
//!   an opening quote.
//!
//! The output is a per-line split: [`LexedFile::code`] holds each line
//! with comment text removed and string/char *contents* blanked (the
//! delimiting quotes survive so token shapes stay visible), and
//! [`LexedFile::comments`] holds each line's comment text. String
//! literal contents are additionally collected into
//! [`LexedFile::strings`] in source order for the rules (metrics
//! liveness) that need to read them.

/// A string literal's content and the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// Zero-based line of the opening quote.
    pub line: usize,
    /// The literal's content, escapes left as written.
    pub text: String,
}

/// The per-line code/comment split of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Line text with comments removed and literal contents blanked.
    pub code: Vec<String>,
    /// Comment text per line (line + block comments, doc or plain).
    pub comments: Vec<String>,
    /// Every string literal in source order.
    pub strings: Vec<StrLit>,
}

impl LexedFile {
    /// The number of lines in the file.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file had no lines at all.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth; depth 0 means the comment just closed.
    BlockComment(u32),
    Str {
        raw_hashes: Option<u32>,
    },
    CharLit,
}

/// Splits `src` into per-line code and comment channels.
///
/// The lexer is a single forward pass; it never backtracks and it never
/// allocates proportionally to anything but the input size. Unterminated
/// literals or comments simply run to end of file — the audit is a lint,
/// not a compiler, and the compiler will reject such a file anyway.
pub fn lex(src: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let mut code = String::new();
    let mut comment = String::new();
    let mut cur_string = String::new();
    let mut cur_string_line = 0usize;
    let mut line = 0usize;
    let mut state = State::Code;

    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {{
            out.code.push(std::mem::take(&mut code));
            out.comments.push(std::mem::take(&mut comment));
            line += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '\n' => {
                    flush_line!();
                    i += 1;
                }
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    i += 2;
                    // Skip the doc-comment marker so `comment` holds text.
                    if matches!(bytes.get(i), Some('/') | Some('!')) {
                        i += 1;
                    }
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    code.push('"');
                    cur_string.clear();
                    cur_string_line = line;
                    state = State::Str { raw_hashes: None };
                    i += 1;
                }
                'r' | 'b' if is_raw_or_byte_string(&bytes, i) => {
                    // Consume the prefix (`r`, `b`, `br`, `rb`) plus hashes
                    // up to the opening quote.
                    let mut j = i;
                    while matches!(bytes.get(j), Some('r') | Some('b')) {
                        code.push(bytes[j]);
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        code.push('#');
                        hashes += 1;
                        j += 1;
                    }
                    // is_raw_or_byte_string guarantees a quote is here.
                    code.push('"');
                    j += 1;
                    cur_string.clear();
                    cur_string_line = line;
                    state = State::Str {
                        raw_hashes: Some(hashes),
                    };
                    i = j;
                }
                '\'' => {
                    // Char literal or lifetime? A lifetime is `'` + ident
                    // with no closing quote right after one char; a char
                    // literal is `'x'` or `'\...'`.
                    if next == Some('\\') {
                        code.push('\'');
                        state = State::CharLit;
                        i += 1;
                    } else if bytes.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        // 'x' — blank the content, keep the quotes.
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        i += 3;
                    } else {
                        // Lifetime (or the rare `'static`): keep as code.
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    flush_line!();
                } else {
                    comment.push(c);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    flush_line!();
                    i += 1;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == '\\' {
                        cur_string.push(c);
                        if let Some(n) = next {
                            cur_string.push(n);
                        }
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        out.strings.push(StrLit {
                            line: cur_string_line,
                            text: std::mem::take(&mut cur_string),
                        });
                        state = State::Code;
                        i += 1;
                    } else {
                        if c == '\n' {
                            flush_line!();
                        }
                        cur_string.push(c);
                        i += 1;
                    }
                }
                Some(hashes) => {
                    if c == '"' && closes_raw(&bytes, i, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        out.strings.push(StrLit {
                            line: cur_string_line,
                            text: std::mem::take(&mut cur_string),
                        });
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        if c == '\n' {
                            flush_line!();
                        }
                        cur_string.push(c);
                        i += 1;
                    }
                }
            },
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    code.push(' ');
                    code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    if c == '\n' {
                        // Malformed; bail back to code so we don't eat the file.
                        flush_line!();
                        state = State::Code;
                    }
                    i += 1;
                }
            }
        }
    }
    // Final (possibly unterminated) line.
    if !code.is_empty() || !comment.is_empty() || out.code.is_empty() || src.ends_with('\n') {
        out.code.push(code);
        out.comments.push(comment);
    }
    out
}

/// Whether `bytes[i..]` starts a raw/byte string prefix (`r"`, `r#`,
/// `b"`, `br"`, `rb#`, …) rather than a plain identifier like `radius`.
fn is_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    // Must not be preceded by an identifier character (else `r` is just
    // the last letter of some identifier's prefix — callers only invoke
    // this at an identifier *start*, but be defensive).
    if i > 0 {
        let p = bytes[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    let mut prefix = 0;
    while matches!(bytes.get(j), Some('r') | Some('b')) && prefix < 2 {
        j += 1;
        prefix += 1;
    }
    // `b"..."` (plain byte string) and `r`-prefixed forms both count; the
    // content must still be blanked either way.
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Whether the quote at `bytes[i]` is followed by `hashes` `#`s.
fn closes_raw(bytes: &[char], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if bytes.get(i + 1 + k) != Some(&'#') {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comment_split() {
        let f = lex("let x = 1; // trailing note\n");
        assert_eq!(f.code[0], "let x = 1; ");
        assert_eq!(f.comments[0], " trailing note");
    }

    #[test]
    fn doc_comment_marker_stripped() {
        let f = lex("/// SAFETY: documented\nfn f() {}\n");
        assert_eq!(f.comments[0], " SAFETY: documented");
        assert_eq!(f.code[0], "");
    }

    #[test]
    fn nested_block_comment() {
        let f = lex("a /* outer /* inner */ still */ b\n");
        assert_eq!(f.code[0], "a  b");
        assert!(f.comments[0].contains("outer"));
        assert!(f.comments[0].contains("inner"));
    }

    #[test]
    fn string_contents_blanked_and_collected() {
        let f = lex("call(\"// not a comment\", x);\n");
        assert_eq!(f.code[0], "call(\"\", x);");
        assert_eq!(f.comments[0], "");
        assert_eq!(f.strings[0].text, "// not a comment");
    }

    #[test]
    fn raw_string_with_hashes() {
        let f = lex("let s = r#\"unsafe { \"quoted\" }\"#;\n");
        assert_eq!(f.code[0], "let s = r#\"\"#;");
        assert_eq!(f.strings[0].text, "unsafe { \"quoted\" }");
    }

    #[test]
    fn multiline_string_spans_lines() {
        let f = lex("let s = \"line one\nunsafe here too\";\nlet y = 2;\n");
        assert_eq!(f.code[0], "let s = \"");
        assert_eq!(f.code[1], "\";");
        assert_eq!(f.code[2], "let y = 2;");
        assert_eq!(f.strings[0].text, "line one\nunsafe here too");
        assert_eq!(f.strings[0].line, 0);
    }

    #[test]
    fn char_literal_versus_lifetime() {
        let f = lex("let c: char = '/'; fn g<'a>(x: &'a str) {}\n");
        assert_eq!(f.code[0], "let c: char = ' '; fn g<'a>(x: &'a str) {}");
        let f = lex("let c = '\\n'; let d = '\\'';\n");
        assert!(!f.code[0].contains('n') || f.code[0].contains("let"));
        assert_eq!(f.comments[0], "");
    }

    #[test]
    fn escaped_quote_in_string() {
        let f = lex("let s = \"a\\\"b // c\";\nlet t = 1;\n");
        assert_eq!(f.code[0], "let s = \"\";");
        assert_eq!(f.code[1], "let t = 1;");
    }

    #[test]
    fn byte_string_blanked() {
        let f = lex("w.append(b\"unsafe bytes\")?;\n");
        assert_eq!(f.code[0], "w.append(b\"\")?;");
        assert_eq!(f.strings[0].text, "unsafe bytes");
    }
}
