//! The `wft-lint` binary: audit the workspace, write `ANALYSIS.md`,
//! exit nonzero on any violation.
//!
//! Usage:
//!
//! ```text
//! cargo run -p wft-lint --release            # audit + regenerate ANALYSIS.md
//! cargo run -p wft-lint --release -- --check # audit only, leave ANALYSIS.md alone
//! cargo run -p wft-lint --release -- --root <path>
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut check_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check_only = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("wft-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("wft-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    // `CARGO_MANIFEST_DIR` is crates/lint; the workspace root is two up.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("crates/lint always sits two levels under the workspace root")
            .to_path_buf()
    });

    let cfg = match wft_lint::load_config(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("wft-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match wft_lint::run(&root, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("wft-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if !check_only {
        let analysis = wft_lint::report::render(&outcome);
        let path = root.join("ANALYSIS.md");
        if let Err(e) = std::fs::write(&path, analysis) {
            eprintln!("wft-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for v in &outcome.violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
    }
    println!(
        "wft-lint: {} files, {} unsafe sites, {} ordering sites, {} waivers, {} violations",
        outcome.files_scanned,
        outcome.unsafe_sites.len(),
        outcome.ordering_sites.len(),
        outcome.waivers.len(),
        outcome.violations.len(),
    );
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
