//! The audit rules, applied to one lexed file at a time.
//!
//! Four rules, each with the shared waiver escape hatch
//! `// wft-lint: allow(<rule>) -- <reason>`:
//!
//! 1. **undocumented-unsafe** — every `unsafe` keyword in code must have
//!    a `SAFETY:` comment (or a `# Safety` doc section) attached to its
//!    statement.
//! 2. **undocumented-ordering** — every line using a non-`Relaxed`
//!    `Ordering::` must carry an `ORDERING:` comment naming the pairing
//!    site; **seqcst** — `Ordering::SeqCst` is additionally denied
//!    without an explicit waiver.
//! 3. **forbidden-api** — per-path deny lists from `lint.toml`.
//! 4. **metrics-liveness** — every sample a `MetricsSource` impl reports
//!    must be backed by state the crate actually mutates (or computes).
//!
//! "Attached" commentary is resolved lexically: the trailing comment on
//! the line itself, plus comments on earlier lines of the *same
//! statement* (scanning up until a line ending in `;`, `{` or `}`), plus
//! the contiguous comment/attribute run immediately above the statement.
//! A blank line breaks attachment, matching clippy's
//! `undocumented_unsafe_blocks` convention.

use crate::config::Config;
use crate::lexer::LexedFile;

/// How far attachment scanning walks upward before giving up. Real
/// comment runs in this workspace are far shorter; the cap only bounds
/// pathological files.
const ATTACH_SCAN_CAP: usize = 60;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier as used in waivers (e.g. `undocumented-unsafe`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// An inventoried (compliant) site, for the `ANALYSIS.md` report.
#[derive(Debug, Clone)]
pub struct Site {
    pub path: String,
    pub line: usize,
    /// What the site is (`unsafe fn`, `Acquire`, `SeqCst+waiver`, …).
    pub kind: String,
    /// Excerpt of the attached justification.
    pub justification: String,
}

/// A waiver in force somewhere in the tree.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub path: String,
    pub line: usize,
    pub rule: String,
    pub reason: String,
}

/// Everything one file contributes to the audit.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub unsafe_sites: Vec<Site>,
    pub ordering_sites: Vec<Site>,
    pub waivers: Vec<Waiver>,
}

/// Runs rules 1–3 over one lexed file. `path` must be workspace-relative
/// with `/` separators (it is matched against `lint.toml` path prefixes).
pub fn scan_file(path: &str, lexed: &LexedFile, cfg: &Config) -> FileReport {
    let mut rep = FileReport::default();
    let test_mask = test_region_mask(lexed);

    collect_waivers(path, lexed, &test_mask, &mut rep);
    rule_undocumented_unsafe(path, lexed, &test_mask, &mut rep);
    rule_undocumented_ordering(path, lexed, &test_mask, &mut rep);
    rule_forbidden_api(path, lexed, &test_mask, cfg, &mut rep);
    rep
}

/// Lines covered by `#[cfg(test)] mod … { … }` regions. Test code is
/// exempt from the audit: it runs single-threaded under the harness and
/// its panics are the point.
fn test_region_mask(lexed: &LexedFile) -> Vec<bool> {
    let mut mask = vec![false; lexed.len()];
    let mut l = 0;
    while l < lexed.len() {
        let code = lexed.code[l].trim();
        let is_test_attr = code.starts_with("#[cfg(") && code.contains("test");
        if !is_test_attr {
            l += 1;
            continue;
        }
        // Find the `{` that opens the annotated item, then brace-match.
        let mut depth: i32 = 0;
        let mut opened = false;
        let start = l;
        let mut end = l;
        'outer: for (scan, code_line) in lexed.code.iter().enumerate().skip(l) {
            for c in code_line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = scan;
                            break 'outer;
                        }
                    }
                    // An item that ends before any brace opens (e.g.
                    // `#[cfg(test)] use …;`) covers just those lines.
                    ';' if !opened => {
                        end = scan;
                        break 'outer;
                    }
                    _ => {}
                }
            }
            end = scan;
        }
        for m in mask.iter_mut().take(end + 1).skip(start) {
            *m = true;
        }
        l = end + 1;
    }
    mask
}

/// The commentary attached to `line`: its own trailing comment, comments
/// on earlier lines of the same statement, and the contiguous
/// comment/attribute run immediately above the statement.
fn attached_comments(lexed: &LexedFile, line: usize) -> String {
    let mut parts: Vec<&str> = vec![lexed.comments[line].as_str()];
    let mut l = line;
    for _ in 0..ATTACH_SCAN_CAP {
        if l == 0 {
            break;
        }
        l -= 1;
        let code = lexed.code[l].trim_end();
        let trimmed = code.trim();
        let comment = lexed.comments[l].as_str();
        if trimmed.is_empty() && comment.is_empty() {
            break; // blank line severs attachment
        }
        if trimmed.is_empty() || trimmed.starts_with("#[") || trimmed.starts_with("#!") {
            parts.push(comment);
            continue;
        }
        if trimmed.ends_with(';') || trimmed.ends_with('{') || trimmed.ends_with('}') {
            // Previous statement ended here; its trailing comment does
            // not attach to ours. The pure-comment run above the current
            // statement was already collected by the branches above.
            break;
        }
        // Mid-statement code line: its trailing comment attaches.
        parts.push(comment);
    }
    parts.reverse();
    parts.join("\n")
}

/// Extracts `wft-lint: allow(<rule>) -- <reason>` pairs from commentary.
fn waivers_in(commentary: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = commentary;
    while let Some(pos) = rest.find("wft-lint: allow(") {
        let after = &rest[pos + "wft-lint: allow(".len()..];
        if let Some(close) = after.find(')') {
            let rule = after[..close].trim().to_owned();
            let tail = &after[close + 1..];
            // Placeholder syntax in prose (`allow(<rule>)`) is not a
            // waiver; real rule names are lowercase-kebab identifiers.
            let is_rule_name = !rule.is_empty()
                && rule
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
            if is_rule_name {
                let reason = tail
                    .trim_start()
                    .strip_prefix("--")
                    .map(|r| r.lines().next().unwrap_or("").trim().to_owned())
                    .unwrap_or_default();
                out.push((rule, reason));
            }
            rest = tail;
        } else {
            break;
        }
    }
    out
}

fn has_waiver(commentary: &str, rule: &str) -> Option<String> {
    waivers_in(commentary)
        .into_iter()
        .find(|(r, _)| r == rule)
        .map(|(_, reason)| reason)
}

/// Records every waiver in the file so `ANALYSIS.md` can inventory them.
fn collect_waivers(path: &str, lexed: &LexedFile, test_mask: &[bool], rep: &mut FileReport) {
    for (l, comment) in lexed.comments.iter().enumerate() {
        if test_mask[l] {
            continue;
        }
        for (rule, reason) in waivers_in(comment) {
            rep.waivers.push(Waiver {
                path: path.to_owned(),
                line: l + 1,
                rule,
                reason,
            });
        }
    }
}

/// First ~`width` chars of the justification, single-line, for tables.
fn excerpt(commentary: &str, marker: &str, width: usize) -> String {
    let text = commentary
        .find(marker)
        .map(|pos| &commentary[pos..])
        .unwrap_or(commentary);
    let one_line = text
        .lines()
        .map(str::trim)
        .collect::<Vec<_>>()
        .join(" ")
        .replace('|', "\\|");
    let mut out: String = one_line.chars().take(width).collect();
    if one_line.chars().count() > width {
        out.push('…');
    }
    out
}

/// Whether `code` contains `word` as a whole word (identifier-bounded).
fn contains_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

/// A short label for what kind of unsafe site a line is.
fn unsafe_kind(code: &str) -> &'static str {
    let t = code.trim();
    if t.contains("unsafe impl") {
        "unsafe impl"
    } else if t.contains("unsafe fn") {
        "unsafe fn"
    } else if t.contains("unsafe trait") {
        "unsafe trait"
    } else {
        "unsafe block"
    }
}

fn rule_undocumented_unsafe(
    path: &str,
    lexed: &LexedFile,
    test_mask: &[bool],
    rep: &mut FileReport,
) {
    for (l, masked) in test_mask.iter().enumerate().take(lexed.len()) {
        if *masked || !contains_word(&lexed.code[l], "unsafe") {
            continue;
        }
        let commentary = attached_comments(lexed, l);
        let documented = commentary.contains("SAFETY:") || commentary.contains("# Safety");
        if documented {
            rep.unsafe_sites.push(Site {
                path: path.to_owned(),
                line: l + 1,
                kind: unsafe_kind(&lexed.code[l]).to_owned(),
                justification: excerpt(&commentary, "SAFETY:", 100),
            });
        } else if let Some(reason) = has_waiver(&commentary, "undocumented-unsafe") {
            rep.unsafe_sites.push(Site {
                path: path.to_owned(),
                line: l + 1,
                kind: format!("{} (waived)", unsafe_kind(&lexed.code[l])),
                justification: reason,
            });
        } else {
            rep.violations.push(Violation {
                path: path.to_owned(),
                line: l + 1,
                rule: "undocumented-unsafe",
                message: format!(
                    "{} without an attached `// SAFETY:` comment",
                    unsafe_kind(&lexed.code[l])
                ),
            });
        }
    }
}

/// The non-`Relaxed` ordering tokens a code line mentions, in order.
///
/// `bare` lists tokens the file imports directly
/// (`use std::sync::atomic::Ordering::{Acquire, ...};`), which later appear
/// without the `Ordering::` path — e.g. `load(Acquire, guard)`.
fn ordering_tokens(code: &str, bare: &[&'static str]) -> Vec<&'static str> {
    let mut found = Vec::new();
    for tok in ["Acquire", "Release", "AcqRel", "SeqCst"] {
        let needle = format!("Ordering::{tok}");
        let mut start = 0;
        while let Some(pos) = code[start..].find(&needle) {
            found.push((start + pos, tok));
            start += pos + needle.len();
        }
        if !bare.contains(&tok) {
            continue;
        }
        let mut start = 0;
        while let Some(pos) = code[start..].find(tok) {
            let abs = start + pos;
            start = abs + tok.len();
            // Word-boundary check so `Acquired` does not count; a preceding
            // `:` means the qualified scan above already recorded this use.
            let before_ok = abs == 0
                || !code[..abs]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':');
            let after_ok = !code[start..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if before_ok && after_ok {
                found.push((abs, tok));
            }
        }
    }
    found.sort_by_key(|&(pos, _)| pos);
    found.into_iter().map(|(_, t)| t).collect()
}

/// Ordering tokens a file imports bare via `use ...::Ordering::{...}`.
fn bare_ordering_imports(lexed: &LexedFile) -> Vec<&'static str> {
    let mut out = Vec::new();
    for code in &lexed.code {
        let t = code.trim_start();
        if !(t.starts_with("use ") || t.starts_with("pub use ")) || !code.contains("Ordering::") {
            continue;
        }
        for tok in ["Acquire", "Release", "AcqRel", "SeqCst"] {
            if contains_word(code, tok) && !out.contains(&tok) {
                out.push(tok);
            }
        }
    }
    out
}

fn rule_undocumented_ordering(
    path: &str,
    lexed: &LexedFile,
    test_mask: &[bool],
    rep: &mut FileReport,
) {
    let bare = bare_ordering_imports(lexed);
    for (l, masked) in test_mask.iter().enumerate().take(lexed.len()) {
        if *masked {
            continue;
        }
        if lexed.code[l].trim_start().starts_with("use ")
            || lexed.code[l].trim_start().starts_with("pub use ")
        {
            continue;
        }
        let toks = ordering_tokens(&lexed.code[l], &bare);
        if toks.is_empty() {
            continue;
        }
        let commentary = attached_comments(lexed, l);
        let has_seqcst = toks.contains(&"SeqCst");
        let documented = commentary.contains("ORDERING:");
        let kind = toks.join("+");

        if !documented && has_waiver(&commentary, "undocumented-ordering").is_none() {
            rep.violations.push(Violation {
                path: path.to_owned(),
                line: l + 1,
                rule: "undocumented-ordering",
                message: format!(
                    "non-Relaxed atomic ordering ({kind}) without an attached \
                     `// ORDERING:` comment naming its pairing site"
                ),
            });
            continue;
        }
        if has_seqcst {
            match has_waiver(&commentary, "seqcst") {
                Some(reason) => rep.ordering_sites.push(Site {
                    path: path.to_owned(),
                    line: l + 1,
                    kind: format!("{kind} (waived)"),
                    justification: if reason.is_empty() {
                        excerpt(&commentary, "ORDERING:", 100)
                    } else {
                        reason
                    },
                }),
                None => rep.violations.push(Violation {
                    path: path.to_owned(),
                    line: l + 1,
                    rule: "seqcst",
                    message: "Ordering::SeqCst is denied by default; justify it with \
                              `// wft-lint: allow(seqcst) -- <why a total order is required>` \
                              or downgrade"
                        .to_owned(),
                }),
            }
        } else {
            rep.ordering_sites.push(Site {
                path: path.to_owned(),
                line: l + 1,
                kind,
                justification: excerpt(&commentary, "ORDERING:", 100),
            });
        }
    }
}

fn rule_forbidden_api(
    path: &str,
    lexed: &LexedFile,
    test_mask: &[bool],
    cfg: &Config,
    rep: &mut FileReport,
) {
    for rule in &cfg.forbidden {
        if !rule.paths.iter().any(|p| path.starts_with(p.as_str())) {
            continue;
        }
        for (l, masked) in test_mask.iter().enumerate().take(lexed.len()) {
            if *masked {
                continue;
            }
            let code = &lexed.code[l];
            for deny in &rule.deny {
                if !code.contains(deny.as_str()) {
                    continue;
                }
                if rule
                    .allow_within_line
                    .iter()
                    .any(|a| code.contains(a.as_str()))
                {
                    continue;
                }
                let commentary = attached_comments(lexed, l);
                if has_waiver(&commentary, "forbidden-api").is_some()
                    || has_waiver(&commentary, &rule.name).is_some()
                {
                    continue;
                }
                rep.violations.push(Violation {
                    path: path.to_owned(),
                    line: l + 1,
                    rule: "forbidden-api",
                    message: format!("`{deny}` is denied here ({}): {}", rule.name, rule.reason),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: metrics liveness. Works crate-wide, so it lives outside scan_file.
// ---------------------------------------------------------------------------

/// A sample pushed by a `MetricsSource` impl.
#[derive(Debug)]
pub struct ReportedMetric {
    pub path: String,
    /// 1-based line of the `push_*` call.
    pub line: usize,
    /// The metric name (first string literal in the call).
    pub name: String,
    /// Identifiers appearing in the value expression.
    pub idents: Vec<String>,
    /// Identifiers that are *invoked* (`ident(`) in the expression — a
    /// computed sample is inherently live.
    pub called: Vec<String>,
    /// Whether a `metrics-liveness` waiver is attached.
    pub waived: bool,
}

/// Identifiers that never name backing state on their own.
const IDENT_STOPLIST: &[&str] = &[
    "self",
    "load",
    "Ordering",
    "Relaxed",
    "Acquire",
    "Release",
    "SeqCst",
    "AcqRel",
    "as",
    "u64",
    "i64",
    "u32",
    "i32",
    "usize",
    "isize",
    "f64",
    "String",
    "to_owned",
    "to_string",
    "clone",
    "into",
    "from",
    "out",
    "push_counter",
    "push_gauge",
    "push_histogram",
];

/// Extracts every sample reported inside `impl MetricsSource` blocks.
pub fn reported_metrics(path: &str, lexed: &LexedFile) -> Vec<ReportedMetric> {
    let mut out = Vec::new();
    let regions = metrics_source_impl_regions(lexed);
    if regions.is_empty() {
        return out;
    }
    let test_mask = test_region_mask(lexed);
    for &(start, end) in &regions {
        let stop = end.min(lexed.len().saturating_sub(1));
        for (l, masked) in test_mask.iter().enumerate().take(stop + 1).skip(start) {
            if *masked {
                continue;
            }
            let code = &lexed.code[l];
            for call in ["push_counter(", "push_gauge(", "push_histogram("] {
                let mut from = 0;
                while let Some(pos) = code[from..].find(call) {
                    let abs = from + pos;
                    from = abs + call.len();
                    // Only method calls (`out.push_counter(…)`); skip the
                    // declarations in wft-obs itself.
                    if !code[..abs].trim_end().ends_with('.') {
                        continue;
                    }
                    let (span_end, expr) = call_span(lexed, l, abs + call.len() - 1);
                    let name = lexed
                        .strings
                        .iter()
                        .find(|s| s.line >= l && s.line <= span_end)
                        .map(|s| s.text.clone())
                        .unwrap_or_default();
                    let (idents, called) = expr_idents(&expr);
                    let commentary = attached_comments(lexed, l);
                    out.push(ReportedMetric {
                        path: path.to_owned(),
                        line: l + 1,
                        name,
                        idents,
                        called,
                        waived: has_waiver(&commentary, "metrics-liveness").is_some(),
                    });
                }
            }
        }
    }
    out
}

/// `(start, end)` line ranges of `impl … MetricsSource … for … { … }`.
fn metrics_source_impl_regions(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut l = 0;
    while l < lexed.len() {
        let code = &lexed.code[l];
        if !(code.contains("impl") && code.contains("MetricsSource") && code.contains("for")) {
            l += 1;
            continue;
        }
        let mut depth: i32 = 0;
        let mut opened = false;
        let start = l;
        let mut end = l;
        'outer: for (scan, code_line) in lexed.code.iter().enumerate().skip(l) {
            for c in code_line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = scan;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
            end = scan;
        }
        regions.push((start, end));
        l = end + 1;
    }
    regions
}

/// The text of a call's argument list, from the `(` at (`line`, `col`)
/// to its matching `)`. Returns the end line and the flattened text.
fn call_span(lexed: &LexedFile, line: usize, col: usize) -> (usize, String) {
    let mut depth: i32 = 0;
    let mut text = String::new();
    for (l, code_line) in lexed.code.iter().enumerate().skip(line) {
        let chars: Box<dyn Iterator<Item = char>> = if l == line {
            Box::new(code_line.chars().skip(col))
        } else {
            Box::new(code_line.chars())
        };
        for c in chars {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return (l, text);
                    }
                }
                _ => {}
            }
            text.push(c);
        }
        text.push(' ');
    }
    (lexed.len().saturating_sub(1), text)
}

/// Splits an expression's identifiers into (all, invoked-as-call).
fn expr_idents(expr: &str) -> (Vec<String>, Vec<String>) {
    let mut idents = Vec::new();
    let mut called = Vec::new();
    let mut cur = String::new();
    let mut chars = expr.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() && !cur.chars().next().is_some_and(|f| f.is_ascii_digit()) {
                if !IDENT_STOPLIST.contains(&cur.as_str()) {
                    if c == '(' {
                        called.push(cur.clone());
                    }
                    idents.push(std::mem::take(&mut cur));
                } else {
                    cur.clear();
                }
            } else {
                cur.clear();
            }
            let _ = chars.peek();
        }
    }
    if !cur.is_empty()
        && !cur.chars().next().is_some_and(|f| f.is_ascii_digit())
        && !IDENT_STOPLIST.contains(&cur.as_str())
    {
        idents.push(cur);
    }
    (idents, called)
}

/// Mutation shapes that count as "the crate bumps this state".
const BUMP_METHODS: &[&str] = &[
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_max(",
    ".fetch_min(",
    ".store(",
    ".inc(",
    ".add(",
    ".sub(",
    ".set(",
    ".record(",
    ".observe(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".fetch_update(",
];

/// Whether `crate_code` (comment-stripped lines of the whole crate)
/// mutates `ident` anywhere: `ident.fetch_add(…)`, `ident += …`,
/// `ident = …`, or `ident: value` inside a constructor is *not* enough —
/// construction always exists; the rule wants a bump on the hot path.
pub fn crate_bumps_ident(crate_code: &[String], ident: &str) -> bool {
    for line in crate_code {
        let mut from = 0;
        while let Some(pos) = line[from..].find(ident) {
            let abs = from + pos;
            from = abs + ident.len();
            let before_ok = abs == 0
                || !line[..abs]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if !before_ok {
                continue;
            }
            let rest = &line[abs + ident.len()..];
            if BUMP_METHODS.iter().any(|m| rest.starts_with(m)) {
                return true;
            }
            let rest_trim = rest.trim_start();
            if rest_trim.starts_with("+=")
                || rest_trim.starts_with("-=")
                || (rest_trim.starts_with('=')
                    && !rest_trim.starts_with("==")
                    && !rest_trim.starts_with("=>"))
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn unsafe_without_comment_fires() {
        let f = lex("fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
        let rep = scan_file("x.rs", &f, &cfg());
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, "undocumented-unsafe");
        assert_eq!(rep.violations[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let f = lex("fn f(p: *const u8) -> u8 {\n    // SAFETY: caller upholds validity.\n    unsafe { *p }\n}\n");
        let rep = scan_file("x.rs", &f, &cfg());
        assert!(rep.violations.is_empty());
        assert_eq!(rep.unsafe_sites.len(), 1);
        assert!(rep.unsafe_sites[0].justification.contains("caller upholds"));
    }

    #[test]
    fn blank_line_severs_safety_attachment() {
        let f =
            lex("// SAFETY: too far away.\n\nfn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
        let rep = scan_file("x.rs", &f, &cfg());
        assert_eq!(rep.violations.len(), 1);
    }

    #[test]
    fn unsafe_in_string_or_comment_ignored() {
        let f = lex("// this mentions unsafe\nlet s = \"unsafe\";\n");
        let rep = scan_file("x.rs", &f, &cfg());
        assert!(rep.violations.is_empty());
        assert!(rep.unsafe_sites.is_empty());
    }

    #[test]
    fn test_mod_is_exempt() {
        let f = lex("#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 {\n        unsafe { *p }\n    }\n}\n");
        let rep = scan_file("x.rs", &f, &cfg());
        assert!(rep.violations.is_empty());
    }

    #[test]
    fn ordering_without_comment_fires() {
        let f = lex("fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Acquire)\n}\n");
        let rep = scan_file("x.rs", &f, &cfg());
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, "undocumented-ordering");
    }

    #[test]
    fn ordering_with_comment_passes_and_is_inventoried() {
        let f = lex(
            "fn f(a: &AtomicU64) -> u64 {\n    // ORDERING: pairs with the Release store in g().\n    a.load(Ordering::Acquire)\n}\n",
        );
        let rep = scan_file("x.rs", &f, &cfg());
        assert!(rep.violations.is_empty());
        assert_eq!(rep.ordering_sites.len(), 1);
        assert_eq!(rep.ordering_sites[0].kind, "Acquire");
    }

    #[test]
    fn seqcst_needs_waiver_even_with_ordering_comment() {
        let doc = "fn f(a: &AtomicU64) -> u64 {\n    // ORDERING: total order with g().\n    a.load(Ordering::SeqCst)\n}\n";
        let rep = scan_file("x.rs", &lex(doc), &cfg());
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, "seqcst");

        let waived = "fn f(a: &AtomicU64) -> u64 {\n    // ORDERING: total order with g().\n    // wft-lint: allow(seqcst) -- cross-shard agreement needs a total order.\n    a.load(Ordering::SeqCst)\n}\n";
        let rep = scan_file("x.rs", &lex(waived), &cfg());
        assert!(rep.violations.is_empty());
        assert_eq!(rep.ordering_sites.len(), 1);
        assert!(rep.ordering_sites[0].kind.contains("waived"));
    }

    #[test]
    fn trailing_comment_attaches() {
        let f = lex("fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Acquire) // ORDERING: pairs with release in publish().\n}\n");
        let rep = scan_file("x.rs", &f, &cfg());
        assert!(rep.violations.is_empty());
    }

    #[test]
    fn forbidden_api_scoped_by_path() {
        let cfg = crate::config::parse(
            "[[forbidden]]\nname = \"no-blocking-sync\"\npaths = [\"crates/queue/src\"]\ndeny = [\"std::sync::Mutex\"]\nreason = \"wait-free\"\n",
        )
        .unwrap();
        let f = lex("use std::sync::Mutex;\n");
        let rep = scan_file("crates/queue/src/lib.rs", &f, &cfg);
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, "forbidden-api");
        let rep = scan_file("crates/durable/src/lib.rs", &f, &cfg);
        assert!(rep.violations.is_empty());
    }

    #[test]
    fn forbidden_api_allow_within_line_and_waiver() {
        let cfg = crate::config::parse(
            "[[forbidden]]\nname = \"no-panic-on-io\"\npaths = [\"crates/durable\"]\ndeny = [\".unwrap()\"]\nallow-within-line = [\"lock().unwrap()\"]\nreason = \"io\"\n",
        )
        .unwrap();
        let good = lex("let g = self.state.lock().unwrap();\n");
        assert!(scan_file("crates/durable/src/j.rs", &good, &cfg)
            .violations
            .is_empty());
        let waived = lex("// wft-lint: allow(forbidden-api) -- length checked above.\nlet v = io_result.unwrap();\n");
        assert!(scan_file("crates/durable/src/j.rs", &waived, &cfg)
            .violations
            .is_empty());
        let bad = lex("let v = io_result.unwrap();\n");
        assert_eq!(
            scan_file("crates/durable/src/j.rs", &bad, &cfg)
                .violations
                .len(),
            1
        );
    }

    #[test]
    fn metrics_extraction_reads_name_and_idents() {
        let f = lex(
            "impl MetricsSource for S {\n    fn collect_metrics(&self, out: &mut MetricsSnapshot) {\n        out.push_counter(\"retries\", self.retries.load(Ordering::Relaxed));\n    }\n}\n",
        );
        let ms = reported_metrics("x.rs", &f);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "retries");
        assert!(ms[0].idents.contains(&"retries".to_owned()));
    }

    #[test]
    fn multiline_push_call_extracted() {
        let f = lex(
            "impl MetricsSource for S {\n    fn collect_metrics(&self, out: &mut MetricsSnapshot) {\n        out.push_counter(\n            \"gate_waits\",\n            self.gate_waits.load(Ordering::Relaxed),\n        );\n    }\n}\n",
        );
        let ms = reported_metrics("x.rs", &f);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "gate_waits");
        assert!(ms[0].idents.contains(&"gate_waits".to_owned()));
    }

    #[test]
    fn bump_detection() {
        let code: Vec<String> = vec![
            "self.retries.fetch_add(1, Ordering::Relaxed);".into(),
            "count += 1;".into(),
            "let x = retries == 3;".into(),
        ];
        assert!(crate_bumps_ident(&code, "retries"));
        assert!(crate_bumps_ident(&code, "count"));
        assert!(!crate_bumps_ident(&code, "ghost"));
    }

    #[test]
    fn waiver_parsing_extracts_reason() {
        let ws = waivers_in(" wft-lint: allow(seqcst) -- needs a total order.");
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].0, "seqcst");
        assert_eq!(ws[0].1, "needs a total order.");
    }
}
