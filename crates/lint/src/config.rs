//! `lint.toml` — the checked-in forbidden-API policy.
//!
//! The file is parsed by a deliberately minimal TOML-subset reader (the
//! workspace vendors no TOML crate and the lint stays dependency-free):
//! it understands `[[forbidden]]` array-of-tables headers, `key = "str"`
//! and `key = ["a", "b"]` entries, and `#` comments. That subset is the
//! whole schema; anything else is a hard configuration error so policy
//! typos fail the build instead of silently relaxing it.

/// One forbidden-API rule: a set of denied substrings scoped to paths.
#[derive(Debug, Clone, Default)]
pub struct ForbiddenRule {
    /// Short policy name, shown in diagnostics (e.g. `no-blocking-sync`).
    pub name: String,
    /// Path prefixes (workspace-relative, `/`-separated) the rule covers.
    pub paths: Vec<String>,
    /// Denied substrings, matched against comment-stripped code lines.
    pub deny: Vec<String>,
    /// Substrings that exempt a line even when a deny pattern matches
    /// (e.g. `lock().unwrap()` poisoning unwraps inside a no-unwrap zone).
    pub allow_within_line: Vec<String>,
    /// The policy's one-line rationale, echoed in diagnostics.
    pub reason: String,
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Every `[[forbidden]]` table, in file order.
    pub forbidden: Vec<ForbiddenRule>,
}

/// Parses the `lint.toml` subset. Returns `Err` with a line-numbered
/// message on anything outside the schema.
pub fn parse(src: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut current: Option<ForbiddenRule> = None;

    for (idx, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if line == "[[forbidden]]" {
            if let Some(rule) = current.take() {
                cfg.forbidden.push(rule);
            }
            current = Some(ForbiddenRule::default());
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "lint.toml:{}: unknown table {line:?} (only [[forbidden]] is understood)",
                idx + 1
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lint.toml:{}: expected `key = value`", idx + 1))?;
        let key = key.trim();
        let value = value.trim();
        let rule = current
            .as_mut()
            .ok_or_else(|| format!("lint.toml:{}: key outside a [[forbidden]] table", idx + 1))?;
        match key {
            "name" => rule.name = parse_string(value, idx)?,
            "reason" => rule.reason = parse_string(value, idx)?,
            "paths" => rule.paths = parse_string_array(value, idx)?,
            "deny" => rule.deny = parse_string_array(value, idx)?,
            "allow-within-line" => rule.allow_within_line = parse_string_array(value, idx)?,
            other => {
                return Err(format!("lint.toml:{}: unknown key {other:?}", idx + 1));
            }
        }
    }
    if let Some(rule) = current.take() {
        cfg.forbidden.push(rule);
    }
    for rule in &cfg.forbidden {
        if rule.name.is_empty() || rule.paths.is_empty() || rule.deny.is_empty() {
            return Err(format!(
                "lint.toml: [[forbidden]] rule {:?} needs non-empty name, paths and deny",
                rule.name
            ));
        }
    }
    Ok(cfg)
}

/// Drops a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_string(value: &str, idx: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].replace("\\\"", "\""))
    } else {
        Err(format!(
            "lint.toml:{}: expected a double-quoted string, got {v:?}",
            idx + 1
        ))
    }
}

fn parse_string_array(value: &str, idx: usize) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|rest| rest.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{}: expected [\"...\"] array, got {v:?}", idx + 1))?;
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in inner.chars() {
        match c {
            '"' if !prev_backslash => {
                if in_str {
                    out.push(std::mem::take(&mut cur));
                }
                in_str = !in_str;
            }
            ',' if !in_str => {}
            _ if in_str => cur.push(c),
            _ if c.is_whitespace() => {}
            _ => {
                return Err(format!(
                    "lint.toml:{}: unexpected {c:?} in array (strings only)",
                    idx + 1
                ));
            }
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    if in_str {
        return Err(format!(
            "lint.toml:{}: unterminated string in array",
            idx + 1
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_forbidden_tables() {
        let cfg = parse(
            r#"
# policy file
[[forbidden]]
name = "no-blocking-sync"
paths = ["crates/queue/src", "crates/core/src"]
deny = ["std::sync::Mutex", "std::sync::RwLock"]
reason = "wait-free crates must never block"

[[forbidden]]
name = "no-panic-on-io"
paths = ["crates/durable/src/journal.rs"]
deny = [".unwrap()"]
allow-within-line = ["lock().unwrap()"]
reason = "I/O errors propagate as StoreError"
"#,
        )
        .unwrap();
        assert_eq!(cfg.forbidden.len(), 2);
        assert_eq!(cfg.forbidden[0].name, "no-blocking-sync");
        assert_eq!(cfg.forbidden[0].deny.len(), 2);
        assert_eq!(cfg.forbidden[1].allow_within_line, vec!["lock().unwrap()"]);
    }

    #[test]
    fn rejects_unknown_keys_and_tables() {
        assert!(parse("[[forbidden]]\nnom = \"x\"\n").is_err());
        assert!(parse("[other]\n").is_err());
        assert!(parse("name = \"orphan\"\n").is_err());
    }

    #[test]
    fn rejects_incomplete_rules() {
        assert!(parse("[[forbidden]]\nname = \"x\"\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = parse(
            "[[forbidden]]\nname = \"x#y\"\npaths = [\"p\"]\ndeny = [\"q#r\"]\nreason = \"z\"\n",
        )
        .unwrap();
        assert_eq!(cfg.forbidden[0].name, "x#y");
        assert_eq!(cfg.forbidden[0].deny[0], "q#r");
    }
}
