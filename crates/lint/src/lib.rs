//! `wft-lint` — the workspace concurrency-audit pass.
//!
//! The wait-free helping protocol at the heart of this workspace rests
//! on invariants the compiler cannot check: which thread may retire a
//! state record, why an `Acquire` load pairs with which `Release` store,
//! which crates must never block. This crate makes those arguments
//! machine-enforced:
//!
//! * [`scan`] implements the rules over a hand-rolled lexer ([`lexer`])
//!   — no `syn`, matching the workspace's vendored-shim philosophy;
//! * [`config`] reads the checked-in `lint.toml` forbidden-API policy;
//! * [`report`] renders the generated `ANALYSIS.md` inventory so the
//!   concurrency surface (every unsafe site, every non-Relaxed atomic,
//!   every waiver) is diffable per PR;
//! * [`run`] wires it together over a workspace root; the `wft-lint`
//!   binary exits nonzero on any violation, which is what CI gates on.
//!
//! Every rule has one escape hatch, the waiver comment
//! `// wft-lint: allow(<rule>) -- <reason>`, so every exception is a
//! documented decision that shows up in `ANALYSIS.md`.

pub mod config;
pub mod lexer;
pub mod report;
pub mod scan;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use scan::{Site, Violation, Waiver};

/// The complete result of auditing a workspace.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Every rule violation, sorted by path then line.
    pub violations: Vec<Violation>,
    /// Compliant unsafe sites (the SAFETY inventory).
    pub unsafe_sites: Vec<Site>,
    /// Compliant non-Relaxed ordering sites (the ORDERING inventory).
    pub ordering_sites: Vec<Site>,
    /// Every waiver in force.
    pub waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// Whether the audit passed.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The source files the audit covers: every `crates/*/src/**/*.rs` plus
/// the umbrella crate's `src/`. Vendored shims (`vendor/`), integration
/// tests (`tests/`), benches and examples are out of scope — the rules
/// guard the production concurrency surface.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        collect_rs(&umbrella, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative, `/`-separated form of `path` used in
/// diagnostics and `lint.toml` matching.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The crate a workspace-relative path belongs to (for the crate-scoped
/// metrics-liveness rule): `crates/store/src/api.rs` → `store`, the
/// umbrella `src/lib.rs` → `.`.
fn crate_of(rel: &str) -> String {
    match rel.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or(rest).to_owned(),
        None => ".".to_owned(),
    }
}

/// Audits the workspace rooted at `root` under the policy in `cfg`.
pub fn run(root: &Path, cfg: &Config) -> std::io::Result<Outcome> {
    let files = workspace_sources(root)?;
    let mut outcome = Outcome {
        files_scanned: files.len(),
        ..Outcome::default()
    };

    // Per-crate state for the metrics-liveness rule: all comment-stripped
    // code lines, and every reported sample.
    let mut crate_code: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut crate_metrics: BTreeMap<String, Vec<scan::ReportedMetric>> = BTreeMap::new();

    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let lexed = lexer::lex(&src);
        let rel = rel_path(root, path);
        let rep = scan::scan_file(&rel, &lexed, cfg);
        outcome.violations.extend(rep.violations);
        outcome.unsafe_sites.extend(rep.unsafe_sites);
        outcome.ordering_sites.extend(rep.ordering_sites);
        outcome.waivers.extend(rep.waivers);

        let krate = crate_of(&rel);
        crate_metrics
            .entry(krate.clone())
            .or_default()
            .extend(scan::reported_metrics(&rel, &lexed));
        crate_code.entry(krate).or_default().extend(lexed.code);
    }

    // Rule 4: every reported sample must be computed live or backed by
    // state the crate mutates somewhere.
    for (krate, metrics) in &crate_metrics {
        let code = &crate_code[krate];
        for m in metrics {
            if m.waived {
                continue;
            }
            let computed = !m.called.is_empty();
            let bumped = m.idents.iter().any(|i| scan::crate_bumps_ident(code, i));
            if !computed && !bumped {
                outcome.violations.push(Violation {
                    path: m.path.clone(),
                    line: m.line,
                    rule: "metrics-liveness",
                    message: format!(
                        "metric `{}` is reported by this MetricsSource but nothing in \
                         crate `{krate}` ever bumps its backing state — dead telemetry",
                        m.name
                    ),
                });
            }
        }
    }

    let sort_key = |p: &str, l: usize| (p.to_owned(), l);
    outcome
        .violations
        .sort_by_key(|v| sort_key(&v.path, v.line));
    outcome
        .unsafe_sites
        .sort_by_key(|s| sort_key(&s.path, s.line));
    outcome
        .ordering_sites
        .sort_by_key(|s| sort_key(&s.path, s.line));
    outcome.waivers.sort_by_key(|w| sort_key(&w.path, w.line));
    Ok(outcome)
}

/// Loads `lint.toml` from the workspace root (an empty policy if the
/// file is absent — rules 1, 2 and 4 still apply).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(src) => config::parse(&src),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/store/src/api.rs"), "store");
        assert_eq!(crate_of("src/lib.rs"), ".");
    }
}
