//! A trivially correct reference implementation of the paper's interface.
//!
//! [`ReferenceMap`] wraps `std::collections::BTreeMap` and exposes exactly
//! the operations of the augmented trees (`insert`, `remove`, `contains`,
//! `count`, `range_agg`, `collect_range`). All range queries are computed by
//! scanning, i.e. in time linear in the range, so the oracle is slow but
//! obviously correct — that is the point: every other tree in the workspace
//! is validated against it, both sequentially and by replaying concurrent
//! histories in linearization order.

use std::collections::BTreeMap;
use std::ops::RangeInclusive;

use crate::augment::Augmentation;
use crate::key::{Key, Value};

/// BTreeMap-backed oracle with the common tree interface.
#[derive(Debug, Clone, Default)]
pub struct ReferenceMap<K: Key, V: Value> {
    inner: BTreeMap<K, V>,
}

impl<K: Key, V: Value> ReferenceMap<K, V> {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        ReferenceMap {
            inner: BTreeMap::new(),
        }
    }

    /// Builds an oracle from entries (later duplicates win).
    pub fn from_entries<I: IntoIterator<Item = (K, V)>>(entries: I) -> Self {
        ReferenceMap {
            inner: entries.into_iter().collect(),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.inner.len() as u64
    }

    /// `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts `key → value` if absent; returns `true` on success (paper
    /// semantics: an existing key leaves the map unmodified).
    pub fn insert(&mut self, key: K, value: V) -> bool {
        use std::collections::btree_map::Entry;
        match self.inner.entry(key) {
            Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            Entry::Occupied(_) => false,
        }
    }

    /// Inserts `key → value`, overwriting any existing value; returns the
    /// replaced value (exactly `BTreeMap::insert` — the oracle semantics of
    /// the concurrent `insert_or_replace`).
    pub fn insert_or_replace(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        self.inner.remove(key).is_some()
    }

    /// Removes `key` and returns its value if present.
    pub fn remove_entry(&mut self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// Value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    /// Number of keys in `[min, max]`, by linear scan of the range.
    pub fn count(&self, min: K, max: K) -> u64 {
        if min > max {
            return 0;
        }
        self.inner.range(range(min, max)).count() as u64
    }

    /// Aggregate of the entries in `[min, max]` under augmentation `A`, by
    /// linear scan of the range.
    pub fn range_agg<A: Augmentation<K, V>>(&self, min: K, max: K) -> A::Agg {
        if min > max {
            return A::identity();
        }
        self.inner
            .range(range(min, max))
            .fold(A::identity(), |acc, (k, v)| A::insert_delta(&acc, k, v))
    }

    /// All `(key, value)` pairs in `[min, max]`, in key order.
    pub fn collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        if min > max {
            return Vec::new();
        }
        self.inner
            .range(range(min, max))
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// All entries in key order.
    pub fn entries(&self) -> Vec<(K, V)> {
        self.inner.iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    /// All keys in key order.
    pub fn keys(&self) -> Vec<K> {
        self.inner.keys().copied().collect()
    }
}

fn range<K: Key>(min: K, max: K) -> RangeInclusive<K> {
    min..=max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::{Size, Sum};

    #[test]
    fn insert_semantics_match_the_paper() {
        let mut m: ReferenceMap<i64, &'static str> = ReferenceMap::new();
        assert!(m.insert(1, "a"));
        assert!(!m.insert(1, "b"));
        assert_eq!(m.get(&1), Some(&"a"));
        assert!(m.remove(&1));
        assert!(!m.remove(&1));
    }

    #[test]
    fn count_and_collect_agree() {
        let m: ReferenceMap<i64, ()> =
            ReferenceMap::from_entries((0..100).filter(|k| k % 3 == 0).map(|k| (k, ())));
        for (min, max) in [(0, 99), (10, 20), (-5, 2), (98, 1000), (50, 10)] {
            assert_eq!(m.count(min, max), m.collect_range(min, max).len() as u64);
        }
    }

    #[test]
    fn range_agg_generalises_count() {
        let m: ReferenceMap<i64, i64> = ReferenceMap::from_entries((1..=10).map(|k| (k, k)));
        assert_eq!(m.range_agg::<Size>(3, 7), 5);
        assert_eq!(m.range_agg::<Sum>(3, 7), (3 + 4 + 5 + 6 + 7) as i128);
    }

    #[test]
    fn inverted_ranges_are_empty() {
        let m: ReferenceMap<i64, ()> = ReferenceMap::from_entries([(1, ()), (2, ())]);
        assert_eq!(m.count(5, 1), 0);
        assert!(m.collect_range(5, 1).is_empty());
        assert_eq!(m.range_agg::<Size>(5, 1), 0);
    }
}
