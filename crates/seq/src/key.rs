//! Key and value trait bounds shared by every tree implementation in the
//! workspace.
//!
//! The paper's trees store totally ordered keys (it evaluates on 64-bit
//! integers) and, for the key-value flavours of aggregate range queries
//! (`range_sum`, `range_add`), an associated value per key. We capture the
//! minimal bounds once so that the sequential oracle, the wait-free tree, the
//! persistent baseline and the lock-based baseline all accept exactly the same
//! type parameters.

use std::fmt::Debug;
use std::hash::Hash;

/// Bound for tree keys.
///
/// Keys must be:
///
/// * totally ordered (`Ord`) — routing in an external BST compares keys with
///   the `Right_Subtree_Min` of inner nodes;
/// * `Copy` — keys are replicated into routing nodes, descriptors, the
///   presence index and rebuilt subtrees; restricting to `Copy` keeps every
///   hot path allocation-free and mirrors the integer keys used throughout
///   the paper's evaluation;
/// * `Hash` — descriptors index per-node metadata and the presence index by
///   key;
/// * `Send + Sync + 'static` — descriptors are shared across helping threads.
pub trait Key: Ord + Copy + Hash + Debug + Send + Sync + 'static {}

impl<T> Key for T where T: Ord + Copy + Hash + Debug + Send + Sync + 'static {}

/// Bound for values associated with keys.
///
/// Values ride along with their key in leaves, descriptors and the presence
/// index; they need to be cloneable, shareable, and comparable for equality
/// (`PartialEq` is what `StoreOp::CompareAndSet` tests its `expect` witness
/// with). Use `()` for plain sets (the paper's
/// `insert`/`remove`/`contains`/`count` interface).
pub trait Value: Clone + Debug + PartialEq + Send + Sync + 'static {}

impl<T> Value for T where T: Clone + Debug + PartialEq + Send + Sync + 'static {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_key<K: Key>() {}
    fn assert_value<V: Value>() {}

    #[test]
    fn primitive_integers_are_keys() {
        assert_key::<i64>();
        assert_key::<u64>();
        assert_key::<i32>();
        assert_key::<u128>();
        assert_key::<(i64, u32)>();
    }

    #[test]
    fn common_types_are_values() {
        assert_value::<()>();
        assert_value::<i64>();
        assert_value::<String>();
        assert_value::<Vec<u8>>();
    }
}
