//! The augmentation algebra: per-subtree metadata that makes aggregate range
//! queries run in `O(height)` instead of `O(range size)`.
//!
//! The paper (Appendix A, Definition 5) calls the extra information stored in
//! tree nodes "augmentation values". The canonical example is the subtree
//! *size*, which turns `count(min, max)` into a logarithmic-time query. Other
//! useful instances are the *sum of values* in a subtree (for `range_sum`) or
//! several of them combined.
//!
//! The concurrent algorithm maintains augmentation values **eagerly, top
//! down**: when an update descriptor is executed in a node it immediately
//! adjusts the augmentation value of the child subtree it descends into
//! (paper §II-C, Listing 3). Aggregate queries linearized after that update
//! then read the adjusted value without waiting for the structural change to
//! reach the leaves. Eager maintenance requires the aggregate to be
//! *invertible*: we must be able to apply the effect of a single
//! insertion/removal to an existing aggregate without re-scanning the
//! subtree. [`Augmentation`] therefore models a commutative group generated
//! by per-entry contributions.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::key::{Key, Value};

/// A commutative-group augmentation over `(K, V)` entries.
///
/// Implementations describe how a single entry contributes to the aggregate
/// of the subtree containing it and how aggregates of disjoint subtrees
/// combine. The laws below are exercised by property tests in this crate and
/// assumed by every tree implementation:
///
/// * `combine` is associative and commutative with identity `identity()`;
/// * `insert_delta(a, k, v) == combine(a, of_entry(k, v))`;
/// * `remove_delta(insert_delta(a, k, v), k, v) == a` (inverse law).
///
/// The type is a *strategy* type: it is never instantiated, so it carries no
/// data and can be a unit struct or an empty enum.
pub trait Augmentation<K: Key, V: Value>: Send + Sync + 'static {
    /// The aggregate value stored in each inner node ("augmentation value").
    type Agg: Clone + PartialEq + Debug + Send + Sync + 'static;

    /// Aggregate of the empty set of entries.
    fn identity() -> Self::Agg;

    /// Aggregate of the singleton set `{(key, value)}`.
    fn of_entry(key: &K, value: &V) -> Self::Agg;

    /// Aggregate of the disjoint union of two entry sets.
    fn combine(a: &Self::Agg, b: &Self::Agg) -> Self::Agg;

    /// Aggregate after adding `(key, value)` to a set with aggregate `agg`.
    ///
    /// The default implementation is `combine(agg, of_entry(key, value))`;
    /// override it only as an optimisation.
    fn insert_delta(agg: &Self::Agg, key: &K, value: &V) -> Self::Agg {
        Self::combine(agg, &Self::of_entry(key, value))
    }

    /// Aggregate after removing `(key, value)` from a set with aggregate
    /// `agg`. This is the group inverse of [`Augmentation::insert_delta`].
    fn remove_delta(agg: &Self::Agg, key: &K, value: &V) -> Self::Agg;

    /// If this augmentation tracks the entry count, extracts it from an
    /// aggregate. Generic `count` implementations use this to answer
    /// counting queries in `O(log N)` whenever a [`Size`] component is
    /// present (alone, or inside a [`Pair`] / [`KeyRange`]), falling back to
    /// collecting the range otherwise.
    fn count_of(_agg: &Self::Agg) -> Option<u64> {
        None
    }
}

/// Subtree size: the augmentation behind the paper's `count(min, max)` query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Size;

impl<K: Key, V: Value> Augmentation<K, V> for Size {
    type Agg = u64;

    fn identity() -> u64 {
        0
    }

    fn of_entry(_: &K, _: &V) -> u64 {
        1
    }

    fn combine(a: &u64, b: &u64) -> u64 {
        a + b
    }

    fn insert_delta(agg: &u64, _: &K, _: &V) -> u64 {
        agg + 1
    }

    fn remove_delta(agg: &u64, _: &K, _: &V) -> u64 {
        agg.checked_sub(1)
            .expect("Size augmentation underflow: removal of an entry that was never counted")
    }

    fn count_of(agg: &u64) -> Option<u64> {
        Some(*agg)
    }
}

/// Sum of values: the augmentation behind `range_sum(min, max)`.
///
/// Values are converted to `i128` through [`IntoSummand`], so both signed and
/// unsigned 64-bit payloads can be summed over millions of entries without
/// overflow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sum;

/// Conversion of a stored value into the `i128` summand used by [`Sum`] and
/// [`SumSquares`].
pub trait IntoSummand {
    /// The numeric contribution of this value.
    fn summand(&self) -> i128;
}

macro_rules! impl_into_summand {
    ($($t:ty),*) => {
        $(impl IntoSummand for $t {
            fn summand(&self) -> i128 {
                *self as i128
            }
        })*
    };
}

impl_into_summand!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl IntoSummand for () {
    fn summand(&self) -> i128 {
        1
    }
}

impl<K: Key, V: Value + IntoSummand> Augmentation<K, V> for Sum {
    type Agg = i128;

    fn identity() -> i128 {
        0
    }

    fn of_entry(_: &K, value: &V) -> i128 {
        value.summand()
    }

    fn combine(a: &i128, b: &i128) -> i128 {
        a + b
    }

    fn remove_delta(agg: &i128, _: &K, value: &V) -> i128 {
        agg - value.summand()
    }
}

/// Sum of squared values: together with [`Sum`] and [`Size`] this supports
/// streaming mean/variance analytics over a key range, the motivating
/// "requests in a time range" example from the paper's introduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumSquares;

impl<K: Key, V: Value + IntoSummand> Augmentation<K, V> for SumSquares {
    type Agg = i128;

    fn identity() -> i128 {
        0
    }

    fn of_entry(_: &K, value: &V) -> i128 {
        let s = value.summand();
        s * s
    }

    fn combine(a: &i128, b: &i128) -> i128 {
        a + b
    }

    fn remove_delta(agg: &i128, _: &K, value: &V) -> i128 {
        let s = value.summand();
        agg - s * s
    }
}

/// Sum of keys interpreted as `i128`. Useful when the key itself is the
/// quantity of interest (e.g. counting total bytes for requests keyed by
/// size).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyRange;

/// Aggregate for [`KeyRange`]: the number of keys plus the sum of keys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyRangeAgg {
    /// Number of keys in the subtree.
    pub count: u64,
    /// Sum of the keys in the subtree.
    pub key_sum: i128,
}

impl<K, V> Augmentation<K, V> for KeyRange
where
    K: Key + IntoSummand,
    V: Value,
{
    type Agg = KeyRangeAgg;

    fn identity() -> KeyRangeAgg {
        KeyRangeAgg::default()
    }

    fn of_entry(key: &K, _: &V) -> KeyRangeAgg {
        KeyRangeAgg {
            count: 1,
            key_sum: key.summand(),
        }
    }

    fn combine(a: &KeyRangeAgg, b: &KeyRangeAgg) -> KeyRangeAgg {
        KeyRangeAgg {
            count: a.count + b.count,
            key_sum: a.key_sum + b.key_sum,
        }
    }

    fn remove_delta(agg: &KeyRangeAgg, key: &K, _: &V) -> KeyRangeAgg {
        KeyRangeAgg {
            count: agg
                .count
                .checked_sub(1)
                .expect("KeyRange augmentation underflow"),
            key_sum: agg.key_sum - key.summand(),
        }
    }

    fn count_of(agg: &KeyRangeAgg) -> Option<u64> {
        Some(agg.count)
    }
}

/// Product combinator: maintains two augmentations side by side so a single
/// range query returns both (e.g. `Pair<Size, Sum>` gives count and sum in
/// one `O(log N)` pass).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Pair<A, B>(PhantomData<(A, B)>);

impl<K, V, A, B> Augmentation<K, V> for Pair<A, B>
where
    K: Key,
    V: Value,
    A: Augmentation<K, V>,
    B: Augmentation<K, V>,
{
    type Agg = (A::Agg, B::Agg);

    fn identity() -> Self::Agg {
        (A::identity(), B::identity())
    }

    fn of_entry(key: &K, value: &V) -> Self::Agg {
        (A::of_entry(key, value), B::of_entry(key, value))
    }

    fn combine(a: &Self::Agg, b: &Self::Agg) -> Self::Agg {
        (A::combine(&a.0, &b.0), B::combine(&a.1, &b.1))
    }

    fn insert_delta(agg: &Self::Agg, key: &K, value: &V) -> Self::Agg {
        (
            A::insert_delta(&agg.0, key, value),
            B::insert_delta(&agg.1, key, value),
        )
    }

    fn remove_delta(agg: &Self::Agg, key: &K, value: &V) -> Self::Agg {
        (
            A::remove_delta(&agg.0, key, value),
            B::remove_delta(&agg.1, key, value),
        )
    }

    fn count_of(agg: &Self::Agg) -> Option<u64> {
        A::count_of(&agg.0).or_else(|| B::count_of(&agg.1))
    }
}

/// Minimum key tracker. **Not invertible**, therefore only usable by the
/// sequential tree (which recomputes aggregates bottom-up on rebuild paths);
/// the concurrent tree rejects it at compile time by requiring
/// [`Augmentation`] (the group trait) rather than this monoid-only form.
///
/// It is retained here because it documents the boundary of the paper's
/// technique: eager top-down maintenance fundamentally needs invertibility.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinKey;

/// Maximum key tracker; see [`MinKey`] for the invertibility caveat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxKey;

/// Monoid used by [`MinKey`]/[`MaxKey`] style summaries in the sequential
/// tree tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Extremum<K> {
    /// No entries in the subtree.
    #[default]
    Empty,
    /// The extremal key of the subtree.
    Key(K),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_entries() {
        let id = <Size as Augmentation<i64, ()>>::identity();
        assert_eq!(id, 0);
        let one = <Size as Augmentation<i64, ()>>::of_entry(&7, &());
        assert_eq!(one, 1);
        let two = <Size as Augmentation<i64, ()>>::combine(&one, &one);
        assert_eq!(two, 2);
        let three = <Size as Augmentation<i64, ()>>::insert_delta(&two, &9, &());
        assert_eq!(three, 3);
        let back = <Size as Augmentation<i64, ()>>::remove_delta(&three, &9, &());
        assert_eq!(back, 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn size_underflow_panics() {
        let id = <Size as Augmentation<i64, ()>>::identity();
        let _ = <Size as Augmentation<i64, ()>>::remove_delta(&id, &1, &());
    }

    #[test]
    fn sum_tracks_values() {
        let id = <Sum as Augmentation<i64, i64>>::identity();
        let a = <Sum as Augmentation<i64, i64>>::insert_delta(&id, &1, &10);
        let b = <Sum as Augmentation<i64, i64>>::insert_delta(&a, &2, &-4);
        assert_eq!(b, 6);
        let c = <Sum as Augmentation<i64, i64>>::remove_delta(&b, &1, &10);
        assert_eq!(c, -4);
    }

    #[test]
    fn sum_of_unit_values_degenerates_to_size() {
        let id = <Sum as Augmentation<i64, ()>>::identity();
        let a = <Sum as Augmentation<i64, ()>>::insert_delta(&id, &1, &());
        let b = <Sum as Augmentation<i64, ()>>::insert_delta(&a, &2, &());
        assert_eq!(b, 2);
    }

    #[test]
    fn sum_squares_is_invertible() {
        let id = <SumSquares as Augmentation<i64, i64>>::identity();
        let a = <SumSquares as Augmentation<i64, i64>>::insert_delta(&id, &1, &3);
        assert_eq!(a, 9);
        let b = <SumSquares as Augmentation<i64, i64>>::insert_delta(&a, &2, &-5);
        assert_eq!(b, 34);
        let c = <SumSquares as Augmentation<i64, i64>>::remove_delta(&b, &1, &3);
        assert_eq!(c, 25);
    }

    #[test]
    fn key_range_tracks_count_and_sum() {
        let id = <KeyRange as Augmentation<i64, ()>>::identity();
        let a = <KeyRange as Augmentation<i64, ()>>::insert_delta(&id, &10, &());
        let b = <KeyRange as Augmentation<i64, ()>>::insert_delta(&a, &-3, &());
        assert_eq!(b.count, 2);
        assert_eq!(b.key_sum, 7);
        let c = <KeyRange as Augmentation<i64, ()>>::remove_delta(&b, &10, &());
        assert_eq!(c.count, 1);
        assert_eq!(c.key_sum, -3);
    }

    #[test]
    fn pair_combines_componentwise() {
        type P = Pair<Size, Sum>;
        let id = <P as Augmentation<i64, i64>>::identity();
        let a = <P as Augmentation<i64, i64>>::insert_delta(&id, &1, &100);
        let b = <P as Augmentation<i64, i64>>::insert_delta(&a, &2, &-1);
        assert_eq!(b, (2, 99));
        let c = <P as Augmentation<i64, i64>>::remove_delta(&b, &2, &-1);
        assert_eq!(c, (1, 100));
        let joined = <P as Augmentation<i64, i64>>::combine(&b, &c);
        assert_eq!(joined, (3, 199));
    }

    #[test]
    fn combine_is_commutative_and_associative_for_size() {
        type S = Size;
        let vals: Vec<u64> = vec![0, 1, 2, 5, 10];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    <S as Augmentation<i64, ()>>::combine(&a, &b),
                    <S as Augmentation<i64, ()>>::combine(&b, &a)
                );
                for &c in &vals {
                    let left = <S as Augmentation<i64, ()>>::combine(
                        &<S as Augmentation<i64, ()>>::combine(&a, &b),
                        &c,
                    );
                    let right = <S as Augmentation<i64, ()>>::combine(
                        &a,
                        &<S as Augmentation<i64, ()>>::combine(&b, &c),
                    );
                    assert_eq!(left, right);
                }
            }
        }
    }
}
