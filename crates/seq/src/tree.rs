//! The sequential augmented external BST with subtree-rebuilding balancing.
//!
//! [`SeqRangeTree`] is the direct sequential counterpart of the concurrent
//! wait-free tree in `wft-core`: the same external node layout, the same
//! `Mod_Cnt > K · Init_Sz` rebuilding rule (§II-E) and the same three-mode
//! aggregate range query from the paper's appendix
//! (`count_both_borders` / `count_left_border` / `count_right_border`). It is
//! used as
//!
//! * the linearizability oracle for the concurrent test suites (a concurrent
//!   history is replayed here in linearization order and the results must
//!   match),
//! * the "ideal" single-thread baseline in the benchmark harness,
//! * executable documentation of the algorithm, free of all synchronization
//!   noise.

use crate::augment::{Augmentation, Size};
use crate::key::{Key, Value};
use crate::node::SeqNode;

/// Default rebuilding factor `K` (§II-E): a subtree is rebuilt once the
/// number of modifications applied to it since creation exceeds `K` times its
/// initial size. `1` keeps the tree within a constant factor of perfectly
/// balanced while preserving `O(1)` amortized rebuilding cost.
pub const DEFAULT_REBUILD_FACTOR: f64 = 1.0;

/// Counters describing how much rebuilding work a tree has performed.
///
/// Exposed so the benchmark harness can report rebuild overhead for the
/// rebuild-factor ablation (experiment E5 in DESIGN.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Number of subtree rebuilds triggered.
    pub rebuilds: u64,
    /// Total number of data items copied into rebuilt subtrees.
    pub rebuilt_items: u64,
}

/// A sequential external binary search tree with group augmentation,
/// `O(log N)` aggregate range queries and amortized `O(log N)` updates.
///
/// See the crate-level example for basic usage. The value type defaults to
/// `()` (plain set) and the augmentation defaults to [`Size`], matching the
/// paper's `insert` / `remove` / `contains` / `count` interface.
#[derive(Debug, Clone)]
pub struct SeqRangeTree<K: Key, V: Value = (), A: Augmentation<K, V> = Size> {
    root: SeqNode<K, V, A>,
    len: u64,
    rebuild_factor: f64,
    stats: RebuildStats,
}

impl<K: Key, V: Value, A: Augmentation<K, V>> Default for SeqRangeTree<K, V, A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> SeqRangeTree<K, V, A> {
    /// Creates an empty tree with the default rebuild factor.
    pub fn new() -> Self {
        Self::with_rebuild_factor(DEFAULT_REBUILD_FACTOR)
    }

    /// Creates an empty tree with an explicit rebuild factor `K` (§II-E).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn with_rebuild_factor(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "rebuild factor must be positive and finite"
        );
        SeqRangeTree {
            root: SeqNode::Empty,
            len: 0,
            rebuild_factor: factor,
            stats: RebuildStats::default(),
        }
    }

    /// Builds a tree from an iterator of entries. Duplicate keys keep the
    /// last value. The resulting tree is perfectly balanced.
    pub fn from_entries<I: IntoIterator<Item = (K, V)>>(entries: I) -> Self {
        let mut sorted: Vec<(K, V)> = entries.into_iter().collect();
        sorted.sort_by_key(|a| a.0);
        sorted.dedup_by(|a, b| a.0 == b.0);
        let len = sorted.len() as u64;
        SeqRangeTree {
            root: SeqNode::build_balanced(&sorted),
            len,
            rebuild_factor: DEFAULT_REBUILD_FACTOR,
            stats: RebuildStats::default(),
        }
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the tree stores no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 for empty or singleton trees).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Rebuilding statistics accumulated so far.
    pub fn rebuild_stats(&self) -> RebuildStats {
        self.stats
    }

    /// The configured rebuild factor `K`.
    pub fn rebuild_factor(&self) -> f64 {
        self.rebuild_factor
    }

    /// Inserts `key` with `value`. Returns `true` if the key was absent
    /// (successful insert, paper semantics) and `false` otherwise, in which
    /// case the tree is left unmodified (the existing value is kept).
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let root = std::mem::take(&mut self.root);
        let (new_root, inserted) =
            Self::insert_rec(root, key, value, self.rebuild_factor, &mut self.stats);
        self.root = new_root;
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Inserts `key → value`, overwriting any existing value; returns the
    /// value it replaced, if any (the upsert; `&mut self` makes it trivially
    /// atomic for the lock-based wrapper).
    pub fn insert_or_replace(&mut self, key: K, value: V) -> Option<V> {
        let prior = self.remove_entry(&key);
        self.insert(key, value);
        prior
    }

    /// Removes `key`. Returns `true` if it was present (successful remove)
    /// together with having removed it, `false` otherwise.
    pub fn remove(&mut self, key: &K) -> bool {
        self.remove_entry(key).is_some()
    }

    /// Removes `key` and returns its value if it was present.
    pub fn remove_entry(&mut self, key: &K) -> Option<V> {
        let root = std::mem::take(&mut self.root);
        let (new_root, removed) = Self::remove_rec(root, key, self.rebuild_factor, &mut self.stats);
        self.root = new_root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Returns `true` if `key` is stored in the tree.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Returns a reference to the value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                SeqNode::Empty => return None,
                SeqNode::Leaf { key: k, value } => return (k == key).then_some(value),
                SeqNode::Inner {
                    rsm, left, right, ..
                } => {
                    node = if key < rsm { left } else { right };
                }
            }
        }
    }

    /// Aggregate of all entries with keys in `[min, max]` (inclusive on both
    /// sides, like the paper's `count(min, max)`), computed in `O(height)`
    /// time via the appendix three-function scheme.
    pub fn range_agg(&self, min: K, max: K) -> A::Agg {
        if min > max {
            return A::identity();
        }
        Self::agg_both_borders(&self.root, &min, &max)
    }

    /// Collects every `(key, value)` pair with key in `[min, max]`, in key
    /// order. Runs in `O(height + |output|)` — this is the linear-time
    /// `collect` range query that prior work supports.
    pub fn collect_range(&self, min: K, max: K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        if min <= max {
            Self::collect_rec(&self.root, &min, &max, &mut out);
        }
        out
    }

    /// All entries in key order.
    pub fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.root.collect_into(&mut out);
        out
    }

    /// Validates every structural invariant (routing intervals, augmentation
    /// freshness, cached length). Intended for tests; panics on violation.
    pub fn check_invariants(&self) {
        let n = self.root.check_invariants(None, None);
        assert_eq!(n, self.len, "cached length diverged from structure");
    }

    // ------------------------------------------------------------------
    // Internal recursive helpers.
    // ------------------------------------------------------------------

    fn needs_rebuild(mod_cnt: u64, init_sz: u64, factor: f64) -> bool {
        // `Mod_Cnt > K * Init_Sz`, with the initial size clamped to 1 so that
        // degenerate subtrees created by single insertions still get rebuilt
        // after a bounded number of modifications.
        (mod_cnt as f64) > factor * (init_sz.max(1) as f64)
    }

    fn rebuild(node: SeqNode<K, V, A>, stats: &mut RebuildStats) -> SeqNode<K, V, A> {
        let mut entries = Vec::new();
        node.collect_into(&mut entries);
        stats.rebuilds += 1;
        stats.rebuilt_items += entries.len() as u64;
        SeqNode::build_balanced(&entries)
    }

    fn maybe_rebuild(
        node: SeqNode<K, V, A>,
        factor: f64,
        stats: &mut RebuildStats,
    ) -> SeqNode<K, V, A> {
        match &node {
            SeqNode::Inner {
                mod_cnt, init_sz, ..
            } if Self::needs_rebuild(*mod_cnt, *init_sz, factor) => Self::rebuild(node, stats),
            _ => node,
        }
    }

    fn insert_rec(
        node: SeqNode<K, V, A>,
        key: K,
        value: V,
        factor: f64,
        stats: &mut RebuildStats,
    ) -> (SeqNode<K, V, A>, bool) {
        match node {
            SeqNode::Empty => (SeqNode::Leaf { key, value }, true),
            SeqNode::Leaf {
                key: existing,
                value: existing_value,
            } => {
                if existing == key {
                    // Unsuccessful insert: key already present, keep the old
                    // value (paper semantics: the tree is left unmodified).
                    (
                        SeqNode::Leaf {
                            key: existing,
                            value: existing_value,
                        },
                        false,
                    )
                } else {
                    // Split the leaf into a routing node over the two keys.
                    let (lo, hi, rsm) = if key < existing {
                        (
                            SeqNode::Leaf { key, value },
                            SeqNode::Leaf {
                                key: existing,
                                value: existing_value,
                            },
                            existing,
                        )
                    } else {
                        (
                            SeqNode::Leaf {
                                key: existing,
                                value: existing_value,
                            },
                            SeqNode::Leaf { key, value },
                            key,
                        )
                    };
                    let agg = A::combine(&lo.agg(), &hi.agg());
                    (
                        SeqNode::Inner {
                            rsm,
                            agg,
                            mod_cnt: 0,
                            init_sz: 2,
                            left: Box::new(lo),
                            right: Box::new(hi),
                        },
                        true,
                    )
                }
            }
            SeqNode::Inner {
                rsm,
                agg,
                mod_cnt,
                init_sz,
                left,
                right,
            } => {
                let go_left = key < rsm;
                let (left, right, inserted) = if go_left {
                    let (l, ins) = Self::insert_rec(*left, key, value, factor, stats);
                    (l, *right, ins)
                } else {
                    let (r, ins) = Self::insert_rec(*right, key, value, factor, stats);
                    (*left, r, ins)
                };
                // On the successful path recompute the aggregate from the
                // children (one O(1) `combine` per level); unsuccessful
                // inserts leave both the aggregate and the modification
                // counter untouched.
                let (agg, mod_cnt) = if inserted {
                    (A::combine(&left.agg(), &right.agg()), mod_cnt + 1)
                } else {
                    (agg, mod_cnt)
                };
                let node = SeqNode::Inner {
                    rsm,
                    agg,
                    mod_cnt,
                    init_sz,
                    left: Box::new(left),
                    right: Box::new(right),
                };
                let node = if inserted {
                    Self::maybe_rebuild(node, factor, stats)
                } else {
                    node
                };
                (node, inserted)
            }
        }
    }

    fn remove_rec(
        node: SeqNode<K, V, A>,
        key: &K,
        factor: f64,
        stats: &mut RebuildStats,
    ) -> (SeqNode<K, V, A>, Option<V>) {
        match node {
            SeqNode::Empty => (SeqNode::Empty, None),
            SeqNode::Leaf { key: k, value } => {
                if &k == key {
                    // Successful remove: the leaf position becomes Empty and
                    // is garbage-collected by the next rebuild above it.
                    (SeqNode::Empty, Some(value))
                } else {
                    (SeqNode::Leaf { key: k, value }, None)
                }
            }
            SeqNode::Inner {
                rsm,
                agg,
                mod_cnt,
                init_sz,
                left,
                right,
            } => {
                let go_left = key < &rsm;
                let (left, right, removed) = if go_left {
                    let (l, rem) = Self::remove_rec(*left, key, factor, stats);
                    (l, *right, rem)
                } else {
                    let (r, rem) = Self::remove_rec(*right, key, factor, stats);
                    (*left, r, rem)
                };
                let (agg, mod_cnt) = if removed.is_some() {
                    (A::combine(&left.agg(), &right.agg()), mod_cnt + 1)
                } else {
                    (agg, mod_cnt)
                };
                let node = SeqNode::Inner {
                    rsm,
                    agg,
                    mod_cnt,
                    init_sz,
                    left: Box::new(left),
                    right: Box::new(right),
                };
                let node = if removed.is_some() {
                    Self::maybe_rebuild(node, factor, stats)
                } else {
                    node
                };
                (node, removed)
            }
        }
    }

    /// `count_both_borders` (appendix Listing 4) generalised to an arbitrary
    /// group augmentation: aggregate of keys in `[min, max]`.
    fn agg_both_borders(node: &SeqNode<K, V, A>, min: &K, max: &K) -> A::Agg {
        match node {
            SeqNode::Empty => A::identity(),
            SeqNode::Leaf { key, value } => {
                if min <= key && key <= max {
                    A::of_entry(key, value)
                } else {
                    A::identity()
                }
            }
            SeqNode::Inner {
                rsm, left, right, ..
            } => {
                if min >= rsm {
                    Self::agg_both_borders(right, min, max)
                } else if max < rsm {
                    Self::agg_both_borders(left, min, max)
                } else {
                    // Fork node: left side only needs the lower border, right
                    // side only the upper border (appendix, "fork node").
                    A::combine(
                        &Self::agg_left_border(left, min),
                        &Self::agg_right_border(right, max),
                    )
                }
            }
        }
    }

    /// `count_left_border`: aggregate of keys `>= min` in the subtree.
    fn agg_left_border(node: &SeqNode<K, V, A>, min: &K) -> A::Agg {
        match node {
            SeqNode::Empty => A::identity(),
            SeqNode::Leaf { key, value } => {
                if key >= min {
                    A::of_entry(key, value)
                } else {
                    A::identity()
                }
            }
            SeqNode::Inner {
                rsm, left, right, ..
            } => {
                if min >= rsm {
                    Self::agg_left_border(right, min)
                } else {
                    A::combine(&right.agg(), &Self::agg_left_border(left, min))
                }
            }
        }
    }

    /// `count_right_border`: aggregate of keys `<= max` in the subtree.
    fn agg_right_border(node: &SeqNode<K, V, A>, max: &K) -> A::Agg {
        match node {
            SeqNode::Empty => A::identity(),
            SeqNode::Leaf { key, value } => {
                if key <= max {
                    A::of_entry(key, value)
                } else {
                    A::identity()
                }
            }
            SeqNode::Inner {
                rsm, left, right, ..
            } => {
                if max < rsm {
                    Self::agg_right_border(left, max)
                } else {
                    A::combine(&left.agg(), &Self::agg_right_border(right, max))
                }
            }
        }
    }

    fn collect_rec(node: &SeqNode<K, V, A>, min: &K, max: &K, out: &mut Vec<(K, V)>) {
        match node {
            SeqNode::Empty => {}
            SeqNode::Leaf { key, value } => {
                if min <= key && key <= max {
                    out.push((*key, value.clone()));
                }
            }
            SeqNode::Inner {
                rsm, left, right, ..
            } => {
                if min < rsm {
                    Self::collect_rec(left, min, max, out);
                }
                if max >= rsm {
                    Self::collect_rec(right, min, max, out);
                }
            }
        }
    }
}

impl<K: Key, V: Value> SeqRangeTree<K, V, Size> {
    /// Number of keys in `[min, max]`: the paper's headline `count` query.
    pub fn count(&self, min: K, max: K) -> u64 {
        self.range_agg(min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::{Pair, Sum};
    use crate::oracle::ReferenceMap;

    #[test]
    fn empty_tree_behaves() {
        let tree: SeqRangeTree<i64> = SeqRangeTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.count(i64::MIN, i64::MAX), 0);
        assert!(!tree.contains(&5));
        assert!(tree.collect_range(i64::MIN, i64::MAX).is_empty());
        tree.check_invariants();
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut tree: SeqRangeTree<i64> = SeqRangeTree::new();
        assert!(tree.insert(10, ()));
        assert!(!tree.insert(10, ()));
        assert!(tree.insert(20, ()));
        assert!(tree.insert(5, ()));
        assert_eq!(tree.len(), 3);
        assert!(tree.contains(&10));
        assert!(tree.contains(&20));
        assert!(tree.contains(&5));
        assert!(!tree.contains(&6));
        assert!(tree.remove(&10));
        assert!(!tree.remove(&10));
        assert_eq!(tree.len(), 2);
        assert!(!tree.contains(&10));
        tree.check_invariants();
    }

    #[test]
    fn count_matches_reference_on_fixed_ranges() {
        let keys = [1i64, 4, 9, 16, 25, 36, 49, 64, 81, 100];
        let mut tree: SeqRangeTree<i64> = SeqRangeTree::new();
        let mut oracle: ReferenceMap<i64, ()> = ReferenceMap::new();
        for &k in &keys {
            tree.insert(k, ());
            oracle.insert(k, ());
        }
        for min in -5..110 {
            for max in [min, min + 3, min + 17, min + 120] {
                assert_eq!(
                    tree.count(min, max),
                    oracle.count(min, max),
                    "count({min}, {max})"
                );
            }
        }
    }

    #[test]
    fn inverted_range_is_empty() {
        let mut tree: SeqRangeTree<i64> = SeqRangeTree::new();
        for k in 0..100 {
            tree.insert(k, ());
        }
        assert_eq!(tree.count(50, 10), 0);
        assert!(tree.collect_range(50, 10).is_empty());
    }

    #[test]
    fn collect_range_returns_sorted_slice() {
        let mut tree: SeqRangeTree<i64, i64> = SeqRangeTree::new();
        for k in (0..200).rev() {
            tree.insert(k, k * 2);
        }
        let got = tree.collect_range(42, 61);
        let expect: Vec<(i64, i64)> = (42..=61).map(|k| (k, k * 2)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn get_returns_values_and_insert_keeps_existing() {
        let mut tree: SeqRangeTree<i64, String> = SeqRangeTree::new();
        assert!(tree.insert(1, "one".to_string()));
        assert!(!tree.insert(1, "uno".to_string()));
        assert_eq!(tree.get(&1), Some(&"one".to_string()));
        assert_eq!(tree.remove_entry(&1), Some("one".to_string()));
        assert_eq!(tree.get(&1), None);
    }

    #[test]
    fn tree_stays_balanced_under_sorted_insertions() {
        let mut tree: SeqRangeTree<i64> = SeqRangeTree::new();
        let n = 10_000i64;
        for k in 0..n {
            tree.insert(k, ());
        }
        tree.check_invariants();
        // Height must stay within a small multiple of log2(n) thanks to the
        // rebuilding rule even though the insertion order is adversarial.
        let log = (n as f64).log2().ceil() as usize;
        assert!(
            tree.height() <= 3 * log,
            "height {} too large for n={} (log={})",
            tree.height(),
            n,
            log
        );
        assert!(tree.rebuild_stats().rebuilds > 0);
    }

    #[test]
    fn removals_trigger_cleanup_rebuilds() {
        let mut tree: SeqRangeTree<i64> = SeqRangeTree::new();
        for k in 0..4096 {
            tree.insert(k, ());
        }
        for k in 0..4096 {
            if k % 2 == 0 {
                tree.remove(&k);
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 2048);
        assert_eq!(tree.count(0, 4095), 2048);
    }

    #[test]
    fn from_entries_builds_balanced_tree() {
        let entries: Vec<(i64, u64)> = (0..1000).map(|k| (k, k as u64)).collect();
        let tree: SeqRangeTree<i64, u64> = SeqRangeTree::from_entries(entries.clone());
        assert_eq!(tree.len(), 1000);
        assert_eq!(tree.entries(), entries);
        assert!(tree.height() <= 10);
        tree.check_invariants();
    }

    #[test]
    fn from_entries_deduplicates_keys() {
        let tree: SeqRangeTree<i64, u64> =
            SeqRangeTree::from_entries(vec![(1, 10), (1, 20), (2, 30)]);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn sum_augmentation_range_queries() {
        let mut tree: SeqRangeTree<i64, i64, Sum> = SeqRangeTree::new();
        for k in 1..=100 {
            tree.insert(k, k);
        }
        // sum of 10..=20
        assert_eq!(tree.range_agg(10, 20), (10..=20).sum::<i64>() as i128);
        tree.remove(&15);
        assert_eq!(
            tree.range_agg(10, 20),
            ((10..=20).sum::<i64>() - 15) as i128
        );
        tree.check_invariants();
    }

    #[test]
    fn pair_augmentation_returns_both_aggregates() {
        let mut tree: SeqRangeTree<i64, i64, Pair<Size, Sum>> = SeqRangeTree::new();
        for k in 0..50 {
            tree.insert(k, 2 * k);
        }
        let (count, sum) = tree.range_agg(10, 19);
        assert_eq!(count, 10);
        assert_eq!(sum, (10..20).map(|k| 2 * k).sum::<i64>() as i128);
    }

    #[test]
    fn rebuild_factor_controls_rebuild_frequency() {
        let mut eager: SeqRangeTree<i64> = SeqRangeTree::with_rebuild_factor(0.25);
        let mut lazy: SeqRangeTree<i64> = SeqRangeTree::with_rebuild_factor(8.0);
        for k in 0..5000 {
            eager.insert(k, ());
            lazy.insert(k, ());
        }
        assert!(
            eager.rebuild_stats().rebuilds > lazy.rebuild_stats().rebuilds,
            "eager {:?} vs lazy {:?}",
            eager.rebuild_stats(),
            lazy.rebuild_stats()
        );
        eager.check_invariants();
        lazy.check_invariants();
    }

    #[test]
    #[should_panic(expected = "rebuild factor")]
    fn invalid_rebuild_factor_is_rejected() {
        let _: SeqRangeTree<i64> = SeqRangeTree::with_rebuild_factor(0.0);
    }

    #[test]
    fn randomized_against_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut tree: SeqRangeTree<i64, i64> = SeqRangeTree::new();
        let mut oracle: ReferenceMap<i64, i64> = ReferenceMap::new();
        for step in 0..20_000 {
            let key = rng.gen_range(0..500);
            match rng.gen_range(0..5) {
                0 | 1 => {
                    assert_eq!(
                        tree.insert(key, key),
                        oracle.insert(key, key),
                        "step {step}"
                    );
                }
                2 => {
                    assert_eq!(tree.remove(&key), oracle.remove(&key), "step {step}");
                }
                3 => {
                    assert_eq!(tree.contains(&key), oracle.contains(&key), "step {step}");
                }
                _ => {
                    let hi = key + rng.gen_range(0i64..100);
                    assert_eq!(tree.count(key, hi), oracle.count(key, hi), "step {step}");
                }
            }
        }
        tree.check_invariants();
        assert_eq!(tree.entries(), oracle.entries());
    }
}
