//! Node representation of the sequential external binary search tree.
//!
//! The tree is *external* (leaf-oriented, paper Appendix A, Definition 3):
//! data items live only in leaves, inner nodes carry the routing key
//! `Right_Subtree_Min` (`rsm`) plus the augmentation value of their subtree.
//! A removed leaf position is replaced by [`SeqNode::Empty`] and physically
//! reclaimed by the next subtree rebuild, exactly mirroring the concurrent
//! tree in `wft-core` so that the two structures can be compared node for
//! node in tests.

use crate::augment::Augmentation;
use crate::key::{Key, Value};

/// A node of the sequential external BST.
#[derive(Debug, Clone, Default)]
pub enum SeqNode<K: Key, V: Value, A: Augmentation<K, V>> {
    /// A subtree containing no data items (either the empty tree or a
    /// removed leaf position awaiting the next rebuild).
    #[default]
    Empty,
    /// A leaf holding one data item.
    Leaf {
        /// The key of the data item.
        key: K,
        /// The value associated with the key.
        value: V,
    },
    /// An internal routing node.
    Inner {
        /// `Right_Subtree_Min`: the smallest key that may appear in the right
        /// subtree. Keys `< rsm` are routed left, keys `>= rsm` right.
        rsm: K,
        /// Augmentation value of the whole subtree rooted here.
        agg: A::Agg,
        /// Number of modifications (successful inserts/removes) applied to
        /// this subtree since the node was created (`Mod_Cnt`, §II-E).
        mod_cnt: u64,
        /// Number of data items in the subtree when the node was created
        /// (`Init_Sz`, §II-E). Immutable.
        init_sz: u64,
        /// Left child.
        left: Box<SeqNode<K, V, A>>,
        /// Right child.
        right: Box<SeqNode<K, V, A>>,
    },
}

impl<K: Key, V: Value, A: Augmentation<K, V>> SeqNode<K, V, A> {
    /// Augmentation value of this subtree (identity for `Empty`, the entry's
    /// contribution for a leaf, the stored value for inner nodes). This is
    /// the paper's `get_size` generalised to arbitrary augmentations.
    pub fn agg(&self) -> A::Agg {
        match self {
            SeqNode::Empty => A::identity(),
            SeqNode::Leaf { key, value } => A::of_entry(key, value),
            SeqNode::Inner { agg, .. } => agg.clone(),
        }
    }

    /// Number of data items stored in this subtree (linear walk; used only by
    /// tests and invariant checks, not by queries).
    pub fn recount(&self) -> u64 {
        match self {
            SeqNode::Empty => 0,
            SeqNode::Leaf { .. } => 1,
            SeqNode::Inner { left, right, .. } => left.recount() + right.recount(),
        }
    }

    /// Height of the subtree (`Empty` and leaves have height 0).
    pub fn height(&self) -> usize {
        match self {
            SeqNode::Empty | SeqNode::Leaf { .. } => 0,
            SeqNode::Inner { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }

    /// Number of inner (routing) nodes in the subtree.
    pub fn inner_nodes(&self) -> usize {
        match self {
            SeqNode::Empty | SeqNode::Leaf { .. } => 0,
            SeqNode::Inner { left, right, .. } => 1 + left.inner_nodes() + right.inner_nodes(),
        }
    }

    /// Appends all `(key, value)` pairs of the subtree to `out` in key order.
    pub fn collect_into(&self, out: &mut Vec<(K, V)>) {
        match self {
            SeqNode::Empty => {}
            SeqNode::Leaf { key, value } => out.push((*key, value.clone())),
            SeqNode::Inner { left, right, .. } => {
                left.collect_into(out);
                right.collect_into(out);
            }
        }
    }

    /// Builds a perfectly balanced external subtree from `entries`, which
    /// must be sorted by key and free of duplicates. Augmentation values are
    /// recomputed bottom-up, `mod_cnt` is reset to zero and `init_sz` records
    /// the subtree size, exactly as the rebuilding procedure of §II-E
    /// prescribes.
    pub fn build_balanced(entries: &[(K, V)]) -> SeqNode<K, V, A> {
        match entries {
            [] => SeqNode::Empty,
            [(key, value)] => SeqNode::Leaf {
                key: *key,
                value: value.clone(),
            },
            _ => {
                let mid = entries.len() / 2;
                // `mid >= 1` because len >= 2: the right part is non-empty
                // and starts at `entries[mid]`, which becomes the routing key.
                let left = Self::build_balanced(&entries[..mid]);
                let right = Self::build_balanced(&entries[mid..]);
                let agg = A::combine(&left.agg(), &right.agg());
                SeqNode::Inner {
                    rsm: entries[mid].0,
                    agg,
                    mod_cnt: 0,
                    init_sz: entries.len() as u64,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
    }

    /// Verifies the structural invariants of the subtree given an optional
    /// enclosing key interval `(lo, hi)` (keys must satisfy `lo <= key < hi`
    /// where the bounds are present). Returns the number of data items.
    ///
    /// Checked invariants:
    /// * leaves respect the routing interval;
    /// * inner nodes have `rsm` within the interval, every left-subtree key
    ///   `< rsm` and every right-subtree key `>= rsm`;
    /// * the stored augmentation equals the recomputed aggregate of the
    ///   leaves below.
    ///
    /// Panics with a descriptive message on violation; used by tests only.
    pub fn check_invariants(&self, lo: Option<&K>, hi: Option<&K>) -> u64 {
        match self {
            SeqNode::Empty => 0,
            SeqNode::Leaf { key, .. } => {
                if let Some(lo) = lo {
                    assert!(key >= lo, "leaf key below routing interval");
                }
                if let Some(hi) = hi {
                    assert!(key < hi, "leaf key above routing interval");
                }
                1
            }
            SeqNode::Inner {
                rsm,
                agg,
                left,
                right,
                ..
            } => {
                if let Some(lo) = lo {
                    assert!(rsm >= lo, "rsm below routing interval");
                }
                if let Some(hi) = hi {
                    assert!(rsm <= hi, "rsm above routing interval");
                }
                let nl = left.check_invariants(lo, Some(rsm));
                let nr = right.check_invariants(Some(rsm), hi);
                let mut entries = Vec::new();
                self.collect_into(&mut entries);
                let expect = entries
                    .iter()
                    .fold(A::identity(), |acc, (k, v)| A::insert_delta(&acc, k, v));
                assert_eq!(agg, &expect, "stored augmentation is stale");
                nl + nr
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::{Size, Sum};

    type N = SeqNode<i64, i64, Size>;

    fn entries(keys: &[i64]) -> Vec<(i64, i64)> {
        keys.iter().map(|&k| (k, k * 10)).collect()
    }

    #[test]
    fn build_balanced_empty_and_singleton() {
        let n = N::build_balanced(&[]);
        assert!(matches!(n, SeqNode::Empty));
        assert_eq!(n.agg(), 0);

        let n = N::build_balanced(&entries(&[5]));
        assert!(matches!(n, SeqNode::Leaf { key: 5, .. }));
        assert_eq!(n.agg(), 1);
    }

    #[test]
    fn build_balanced_is_balanced_and_ordered() {
        let keys: Vec<i64> = (0..1024).collect();
        let n = N::build_balanced(&entries(&keys));
        assert_eq!(n.recount(), 1024);
        assert_eq!(n.agg(), 1024);
        // A perfect external tree over 2^k leaves has height k.
        assert_eq!(n.height(), 10);
        n.check_invariants(None, None);
    }

    #[test]
    fn build_balanced_odd_sizes() {
        for n_keys in [2usize, 3, 5, 7, 13, 100, 257] {
            let keys: Vec<i64> = (0..n_keys as i64).map(|i| i * 3 + 1).collect();
            let n = N::build_balanced(&entries(&keys));
            assert_eq!(n.recount() as usize, n_keys);
            n.check_invariants(None, None);
            let ceil_log = (n_keys as f64).log2().ceil() as usize;
            assert!(
                n.height() <= ceil_log,
                "height {} exceeds ceil(log2({})) = {}",
                n.height(),
                n_keys,
                ceil_log
            );
        }
    }

    #[test]
    fn collect_into_returns_sorted_entries() {
        let keys: Vec<i64> = vec![3, 7, 11, 19, 23];
        let n = N::build_balanced(&entries(&keys));
        let mut out = Vec::new();
        n.collect_into(&mut out);
        assert_eq!(out, entries(&keys));
    }

    #[test]
    fn sum_augmentation_is_recomputed_bottom_up() {
        let n: SeqNode<i64, i64, Sum> = SeqNode::build_balanced(&entries(&[1, 2, 3, 4]));
        assert_eq!(n.agg(), (1 + 2 + 3 + 4) * 10);
    }

    #[test]
    fn inner_node_count_for_perfect_tree() {
        let keys: Vec<i64> = (0..64).collect();
        let n = N::build_balanced(&entries(&keys));
        // A full external tree with L leaves has L-1 inner nodes.
        assert_eq!(n.inner_nodes(), 63);
    }
}
