//! Sequential augmented external binary search trees and the augmentation
//! framework shared by every tree in this workspace.
//!
//! This crate contains the *sequential* half of the paper "Wait-free Trees
//! with Asymptotically-Efficient Range Queries" (IPPS 2024):
//!
//! * the [`Augmentation`] trait — the algebra of per-subtree metadata
//!   ("augmentation values" in the paper's terminology, Appendix A) together
//!   with the standard instances ([`Size`], [`Sum`], [`Pair`], ...);
//! * [`SeqRangeTree`] — an external (leaf-oriented) binary search tree with
//!   subtree-rebuilding balancing and `O(height)` aggregate range queries,
//!   implementing the appendix algorithms `count_both_borders`,
//!   `count_left_border` and `count_right_border` literally;
//! * [`ReferenceMap`] — a trivially correct ordered-map oracle backed by
//!   `std::collections::BTreeMap`, used by the test suites of every other
//!   crate to validate concurrent executions.
//!
//! The concurrent tree in `wft-core`, the persistent baseline in
//! `wft-persistent` and the lock-based baseline in `wft-lockbased` all build
//! on the same [`Augmentation`] algebra so that experiments compare
//! like-for-like semantics.
//!
//! # Quick example
//!
//! ```
//! use wft_seq::{SeqRangeTree, Size};
//!
//! let mut tree: SeqRangeTree<i64, (), Size> = SeqRangeTree::new();
//! for key in [1, 5, 9, 12, 42] {
//!     assert!(tree.insert(key, ()));
//! }
//! assert_eq!(tree.count(4, 12), 3); // {5, 9, 12}
//! assert!(tree.contains(&42));
//! assert!(tree.remove(&42));
//! assert_eq!(tree.count(i64::MIN, i64::MAX), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod augment;
pub mod key;
pub mod node;
pub mod oracle;
pub mod tree;

pub use augment::{Augmentation, KeyRange, MaxKey, MinKey, Pair, Size, Sum, SumSquares};
pub use key::{Key, Value};
pub use node::SeqNode;
pub use oracle::ReferenceMap;
pub use tree::{RebuildStats, SeqRangeTree, DEFAULT_REBUILD_FACTOR};
