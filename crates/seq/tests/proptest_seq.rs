//! Property-based tests for the sequential augmented tree.
//!
//! These properties are the sequential half of the paper's correctness
//! argument: the tree must behave exactly like a set/map under arbitrary
//! operation sequences, aggregate range queries must agree with a linear
//! scan, and the rebuilding rule must preserve both the key set and balance.

use proptest::collection::vec;
use proptest::prelude::*;

use wft_seq::{Augmentation, Pair, ReferenceMap, SeqNode, SeqRangeTree, Size, Sum};

/// A small operation language over a bounded key universe so that inserts,
/// removes and range queries collide often.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Remove(i64),
    Contains(i64),
    Count(i64, i64),
    SumRange(i64, i64),
    Collect(i64, i64),
}

fn op_strategy(universe: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..universe, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..universe).prop_map(Op::Remove),
        (0..universe).prop_map(Op::Contains),
        (0..universe, 0..universe).prop_map(|(a, b)| Op::Count(a, b)),
        (0..universe, 0..universe).prop_map(|(a, b)| Op::SumRange(a, b)),
        (0..universe, 0..universe).prop_map(|(a, b)| Op::Collect(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tree agrees with the BTreeMap oracle on every operation of every
    /// generated sequence, and its invariants hold at the end.
    #[test]
    fn tree_matches_oracle(ops in vec(op_strategy(128), 1..400)) {
        let mut tree: SeqRangeTree<i64, i64, Pair<Size, Sum>> = SeqRangeTree::new();
        let mut oracle: ReferenceMap<i64, i64> = ReferenceMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(tree.insert(k, v), oracle.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), oracle.remove(&k)),
                Op::Contains(k) => prop_assert_eq!(tree.contains(&k), oracle.contains(&k)),
                Op::Count(a, b) => {
                    let (count, _) = tree.range_agg(a, b);
                    prop_assert_eq!(count, oracle.count(a, b));
                }
                Op::SumRange(a, b) => {
                    let (_, sum) = tree.range_agg(a, b);
                    prop_assert_eq!(sum, oracle.range_agg::<Sum>(a, b));
                }
                Op::Collect(a, b) => {
                    prop_assert_eq!(tree.collect_range(a, b), oracle.collect_range(a, b));
                }
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.entries(), oracle.entries());
    }

    /// `count` equals `collect().len()` — the identity the paper uses to
    /// define the semantics of the aggregate query.
    #[test]
    fn count_equals_collect_len(
        keys in vec(0i64..1000, 0..300),
        min in 0i64..1000,
        width in 0i64..1000,
    ) {
        let mut tree: SeqRangeTree<i64> = SeqRangeTree::new();
        for k in keys {
            tree.insert(k, ());
        }
        let max = min.saturating_add(width);
        prop_assert_eq!(tree.count(min, max), tree.collect_range(min, max).len() as u64);
    }

    /// Rebuilding preserves the key set, produces logarithmic height and a
    /// fresh modification counter.
    #[test]
    fn build_balanced_preserves_entries(keys in vec(any::<i64>(), 0..500)) {
        let mut sorted: Vec<(i64, ())> = keys.iter().map(|&k| (k, ())).collect();
        sorted.sort();
        sorted.dedup();
        let node: SeqNode<i64, (), Size> = SeqNode::build_balanced(&sorted);
        let mut out = Vec::new();
        node.collect_into(&mut out);
        prop_assert_eq!(&out, &sorted);
        if !sorted.is_empty() {
            let log = (sorted.len() as f64).log2().ceil() as usize;
            prop_assert!(node.height() <= log.max(1));
        }
        node.check_invariants(None, None);
    }

    /// The balancing rule keeps the height logarithmic under arbitrary
    /// (including adversarially sorted) insertion orders.
    #[test]
    fn height_stays_logarithmic(mut keys in vec(0i64..100_000, 64..2000)) {
        let mut tree: SeqRangeTree<i64> = SeqRangeTree::new();
        // Half sorted, half as-generated: mixes the adversarial and random cases.
        let half = keys.len() / 2;
        keys[..half].sort_unstable();
        for k in &keys {
            tree.insert(*k, ());
        }
        tree.check_invariants();
        let n = tree.len().max(2) as f64;
        prop_assert!(
            tree.height() as f64 <= 4.0 * n.log2() + 2.0,
            "height {} for n {}",
            tree.height(),
            tree.len()
        );
    }

    /// Augmentation group laws: removal undoes insertion for the `Sum`
    /// augmentation used by the key-value experiments.
    #[test]
    fn sum_insert_remove_inverse(entries in vec((any::<i64>(), -1000i64..1000), 1..100)) {
        let base = <Sum as Augmentation<i64, i64>>::identity();
        let mut acc = base;
        for (k, v) in &entries {
            acc = <Sum as Augmentation<i64, i64>>::insert_delta(&acc, k, v);
        }
        for (k, v) in entries.iter().rev() {
            acc = <Sum as Augmentation<i64, i64>>::remove_delta(&acc, k, v);
        }
        prop_assert_eq!(acc, base);
    }
}
