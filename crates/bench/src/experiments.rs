//! Shared experiment definitions (used by the `figures` binary and tests).
//!
//! Each function returns the rows of one table/figure from DESIGN.md §4. The
//! scale parameter selects between a quick smoke configuration (seconds, used
//! in CI and by default) and a "paper" configuration that matches the
//! original experimental setup as closely as this hardware allows (full 2·10⁶
//! key range, longer intervals, more repetitions).

use std::sync::Arc;
use std::time::Duration;

use wft_core::{TreeConfig, WaitFreeTree};
use wft_workload::{
    run_experiment, timed_run, ExperimentConfig, FigureRow, TreeImpl, WorkloadSpec,
};

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Small key ranges and very short intervals: finishes in a couple of
    /// minutes on a single-core machine; good for CI and for validating the
    /// qualitative shape of the results.
    Quick,
    /// The paper's workload sizes (2·10⁶ keys, 10⁶-key prefill) with longer
    /// measurement intervals. Use on a many-core machine to approach the
    /// published setup.
    Paper,
}

impl ExperimentScale {
    /// The thread counts to sweep.
    pub fn threads(&self) -> Vec<usize> {
        match self {
            ExperimentScale::Quick => vec![1, 2, 4],
            ExperimentScale::Paper => vec![1, 2, 4, 8, 12, 16, 20, 24],
        }
    }

    fn config(&self) -> ExperimentConfig {
        match self {
            ExperimentScale::Quick => ExperimentConfig {
                threads: self.threads(),
                duration: Duration::from_millis(200),
                runs: 2,
                seed: 0xC0FFEE,
            },
            ExperimentScale::Paper => ExperimentConfig {
                threads: self.threads(),
                duration: Duration::from_secs(10),
                runs: 5,
                seed: 0xC0FFEE,
            },
        }
    }

    fn scale_spec(&self, spec: WorkloadSpec) -> WorkloadSpec {
        match self {
            ExperimentScale::Quick => spec.scaled_down(50_000),
            ExperimentScale::Paper => spec,
        }
    }
}

/// Rows of one of the paper's figures (7, 8 or 9): a sweep over thread
/// counts for the given workload and the given implementations.
pub fn figure_rows(
    spec: WorkloadSpec,
    impls: &[TreeImpl],
    scale: ExperimentScale,
) -> Vec<FigureRow> {
    let spec = scale.scale_spec(spec);
    let config = scale.config();
    let mut rows = Vec::new();
    for &threads in &config.threads {
        for &imp in impls {
            let summary = run_experiment(imp, &spec, threads, &config);
            rows.push(FigureRow {
                workload: spec.name.to_string(),
                implementation: imp.name().to_string(),
                threads,
                ops_per_sec: summary.mean_ops_per_sec,
                min_ops_per_sec: summary.min_ops_per_sec,
                max_ops_per_sec: summary.max_ops_per_sec,
                runs: summary.runs,
                p50_ns: summary.p50_ns,
                p99_ns: summary.p99_ns,
                p999_ns: summary.p999_ns,
            });
        }
    }
    rows
}

/// Experiment E4: `count` (aggregate query) versus `collect().len()` (the
/// prior-work implementation) as the queried range widens. Single-threaded,
/// so the difference is purely algorithmic. Three series are reported: the
/// wait-free tree's aggregate `count`, the same tree answering through
/// `collect`, and the lock-free external BST baseline whose *only* option is
/// `collect` (the "linear-time solutions" class).
pub fn count_scaling_rows(scale: ExperimentScale) -> Vec<FigureRow> {
    let (key_range, duration) = match scale {
        ExperimentScale::Quick => (100_000i64, Duration::from_millis(200)),
        ExperimentScale::Paper => (2_000_000i64, Duration::from_secs(3)),
    };
    let series: [(TreeImpl, bool, &str); 4] = [
        (TreeImpl::WaitFree, false, "count (aggregate)"),
        (TreeImpl::WaitFree, true, "collect().len()"),
        (TreeImpl::Trie, false, "trie count (aggregate)"),
        (
            TreeImpl::LockFreeLinear,
            true,
            "lock-free-bst collect().len()",
        ),
    ];
    let mut rows = Vec::new();
    for &fraction in &[0.0001, 0.001, 0.01, 0.1, 0.5] {
        for &(imp, via_collect, label) in &series {
            let spec = WorkloadSpec::count_only(key_range, fraction, via_collect);
            let config = ExperimentConfig {
                threads: vec![1],
                duration,
                runs: 2,
                seed: 7,
            };
            let summary = run_experiment(imp, &spec, 1, &config);
            rows.push(FigureRow {
                workload: format!("range×{fraction}"),
                implementation: label.to_string(),
                threads: 1,
                ops_per_sec: summary.mean_ops_per_sec,
                min_ops_per_sec: summary.min_ops_per_sec,
                max_ops_per_sec: summary.max_ops_per_sec,
                runs: summary.runs,
                p50_ns: summary.p50_ns,
                p99_ns: summary.p99_ns,
                p999_ns: summary.p999_ns,
            });
        }
    }
    rows
}

/// Experiment E5: rebuild-factor ablation. Sweeps the §II-E constant `K`
/// under the insert-delete workload and reports throughput; the rebuild
/// counters are printed alongside by the `figures` binary.
pub fn rebuild_ablation_rows(scale: ExperimentScale) -> Vec<FigureRow> {
    let spec = scale.scale_spec(WorkloadSpec::insert_delete());
    let (duration, runs, threads) = match scale {
        ExperimentScale::Quick => (Duration::from_millis(200), 2, 2),
        ExperimentScale::Paper => (Duration::from_secs(5), 3, 8),
    };
    let mut rows = Vec::new();
    for &factor in &[0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let mut throughputs = Vec::new();
        let mut latency = wft_obs::HistogramSnapshot::default();
        for run in 0..runs {
            let prefill = spec.prefill_keys(100 + run as u64);
            let tree = WaitFreeTree::<i64>::from_entries_with_config(
                prefill.iter().map(|&k| (k, ())),
                TreeConfig {
                    rebuild_factor: factor,
                    ..TreeConfig::default()
                },
            );
            let set: Arc<dyn wft_workload::ConcurrentSet> = Arc::new(tree);
            let result = timed_run(set, &spec, threads, duration, 100 + run as u64);
            throughputs.push(result.ops_per_sec);
            latency = latency.merged_with(&result.latency);
        }
        let mean = throughputs.iter().sum::<f64>() / throughputs.len() as f64;
        rows.push(FigureRow {
            workload: spec.name.to_string(),
            implementation: format!("wait-free-tree(K={factor})"),
            threads,
            ops_per_sec: mean,
            min_ops_per_sec: throughputs.iter().copied().fold(f64::INFINITY, f64::min),
            max_ops_per_sec: throughputs
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
            runs,
            p50_ns: latency.quantile(0.50),
            p99_ns: latency.quantile(0.99),
            p999_ns: latency.quantile(0.999),
        });
    }
    rows
}

/// Experiment E6: lock-free vs wait-free root queue under update-heavy
/// contention (Lemma 1's construction costs `O(P log P)` per enqueue).
pub fn root_queue_rows(scale: ExperimentScale) -> Vec<FigureRow> {
    figure_rows(
        WorkloadSpec::successful_insert(),
        &[TreeImpl::WaitFree, TreeImpl::WaitFreeWfRoot],
        scale,
    )
}

/// Experiment E7: mixed workloads with a growing share of aggregate range
/// queries, across every implementation.
pub fn range_mix_rows(scale: ExperimentScale) -> Vec<FigureRow> {
    let config = scale.config();
    let mut rows = Vec::new();
    for &count_percent in &[1.0f64, 5.0, 20.0] {
        let spec = scale.scale_spec(WorkloadSpec::range_mix(count_percent, 0.01));
        for &threads in config.threads.iter().take(2) {
            for imp in TreeImpl::ALL {
                let summary = run_experiment(imp, &spec, threads, &config);
                rows.push(FigureRow {
                    workload: format!("range-mix({count_percent}%)"),
                    implementation: imp.name().to_string(),
                    threads,
                    ops_per_sec: summary.mean_ops_per_sec,
                    min_ops_per_sec: summary.min_ops_per_sec,
                    max_ops_per_sec: summary.max_ops_per_sec,
                    runs: summary.runs,
                    p50_ns: summary.p50_ns,
                    p99_ns: summary.p99_ns,
                    p999_ns: summary.p999_ns,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_sweeps_are_well_formed() {
        // A tiny sanity run of the figure-7 sweep restricted to one thread
        // count and the two paper implementations.
        let spec = WorkloadSpec::contains_benchmark().scaled_down(5_000);
        let rows = {
            let config = ExperimentConfig {
                threads: vec![2],
                duration: Duration::from_millis(30),
                runs: 1,
                seed: 1,
            };
            let mut rows = Vec::new();
            for imp in TreeImpl::PAPER {
                let summary = run_experiment(imp, &spec, 2, &config);
                rows.push((imp.name(), summary.mean_ops_per_sec));
            }
            rows
        };
        assert_eq!(rows.len(), 2);
        for (name, ops) in rows {
            assert!(ops > 0.0, "{name} reported zero throughput");
        }
    }

    #[test]
    fn scale_configuration_is_consistent() {
        assert!(ExperimentScale::Quick.threads().len() < ExperimentScale::Paper.threads().len());
        assert!(
            ExperimentScale::Quick.config().duration < ExperimentScale::Paper.config().duration
        );
    }
}
