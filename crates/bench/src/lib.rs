//! Experiment drivers for the paper's evaluation.
//!
//! Two kinds of benchmarks live in this crate:
//!
//! * the **`figures` binary** (`cargo run -p wft-bench --release --bin
//!   figures -- <experiment>`) — reproduces every figure of the paper's
//!   evaluation (and the additional experiments listed in DESIGN.md §4) as
//!   throughput tables, using the multi-threaded timed harness from
//!   `wft-workload`;
//! * the **criterion benches** in `benches/` — per-operation latency
//!   micro-benchmarks (one per experiment family) that run under
//!   `cargo bench` and capture the asymptotic claims (e.g. `count` vs
//!   `collect().len()` as the range grows).
//!
//! The library part of the crate hosts the experiment definitions shared by
//! both so the binary and the benches cannot drift apart.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;

pub use experiments::{
    count_scaling_rows, figure_rows, range_mix_rows, rebuild_ablation_rows, root_queue_rows,
    ExperimentScale,
};
