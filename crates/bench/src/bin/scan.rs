//! Streaming-scan benchmark (`BENCH_scan.json`).
//!
//! Measures what cursor pagination costs (and buys) against the one-shot
//! listing: the same range-consumption workloads are run with each range
//! answered by a single `collect_range` (whole answer materialised at once)
//! and by draining a `RangeScan` cursor at chunk sizes 16 / 256 / 4096, at
//! 1/4/8 reader threads over an 8-shard store, with and without background
//! writers. Reader throughput (drains and entries per second) plus the
//! observability counters of the scan path — store cursor resumes and
//! per-shard chunk early exits (`fast_range_early_exits`, the
//! `O(log N + limit)` evidence) — land in `BENCH_scan.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin scan            # full run
//! cargo run --release --bin scan -- --smoke # short CI run
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use wft_store::{RangeRead, RangeScan, RangeSpec, ScanConsistency, ScanCursor, ShardedStore};

const SHARDS: usize = 8;
const WRITER_THREADS: usize = 2;

/// One measured configuration point.
#[derive(Debug, Serialize)]
struct Point {
    workload: String,
    read_mode: String,
    reader_threads: usize,
    drains_per_sec: f64,
    entries_per_sec: f64,
    writes_per_sec: f64,
    snapshot_drain_fraction: f64,
    scan_resumes: u64,
    chunk_early_exits: u64,
    /// Median sampled per-drain latency (ns; one in 8 drains is timed).
    drain_p50_ns: u64,
    /// 99th-percentile sampled per-drain latency (ns).
    drain_p99_ns: u64,
    /// 99.9th-percentile sampled per-drain latency (ns).
    drain_p999_ns: u64,
    /// The store's full `wft-obs` metrics delta over the measurement
    /// window, plus the drain latency histogram under `drain_latency_ns`.
    window: wft_obs::MetricsSnapshot,
}

/// The store's `wft-obs` metrics through its `MetricsSource` impl.
fn metrics_of(store: &ShardedStore<i64>) -> wft_obs::MetricsSnapshot {
    let mut out = wft_obs::MetricsSnapshot::new();
    wft_obs::MetricsSource::collect_metrics(store, &mut out);
    out
}

/// Cursor-vs-one-shot ratio for one (workload, chunk, threads) cell.
#[derive(Debug, Serialize)]
struct Overhead {
    workload: String,
    chunk: usize,
    reader_threads: usize,
    oneshot_drains_per_sec: f64,
    cursor_drains_per_sec: f64,
    /// `cursor / oneshot`: 1.0 means bounded-memory pagination costs
    /// nothing over materialising the whole answer.
    relative_throughput: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    smoke: bool,
    key_range: i64,
    shards: usize,
    writer_threads: usize,
    duration_ms: u64,
    points: Vec<Point>,
    overheads: Vec<Overhead>,
}

#[derive(Clone, Copy, PartialEq)]
enum ReadMode {
    /// One `collect_range` per drawn range (the whole answer at once).
    OneShot,
    /// One cursor drained at the given chunk size.
    Cursor(usize),
}

impl ReadMode {
    fn name(self) -> String {
        match self {
            ReadMode::OneShot => "one-shot-collect".to_string(),
            ReadMode::Cursor(chunk) => format!("cursor-chunk-{chunk}"),
        }
    }
}

#[derive(Clone, Copy)]
struct Workload {
    name: &'static str,
    with_writers: bool,
}

fn measure(
    workload: Workload,
    mode: ReadMode,
    reader_threads: usize,
    key_range: i64,
    duration: Duration,
    seed: u64,
) -> Point {
    let store: Arc<ShardedStore<i64>> = Arc::new(ShardedStore::from_entries(
        (0..key_range).filter(|k| k % 2 == 0).map(|k| (k, ())),
        SHARDS,
    ));
    let writer_threads = if workload.with_writers {
        WRITER_THREADS
    } else {
        0
    };
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(reader_threads + writer_threads + 1));
    let snapshot_drains = Arc::new(AtomicU64::new(0));
    // Shared across readers: per-thread-sharded cells, no contention.
    let latency = Arc::new(wft_obs::LatencyHistogram::new());
    let before = metrics_of(&store);

    let readers: Vec<_> = (0..reader_threads)
        .map(|t| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let snapshot_drains = Arc::clone(&snapshot_drains);
            let latency = Arc::clone(&latency);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64 + 1).wrapping_mul(0x9E37));
                barrier.wait();
                let mut drains = 0u64;
                let mut entries = 0u64;
                let mut snapshots = 0u64;
                // One drain per stop check: a cross-shard drain under
                // writers can take seconds, so batching them would let the
                // measurement overshoot its window badly.
                while !stop.load(Ordering::Relaxed) {
                    // A span crossing most shard boundaries.
                    let lo = rng.gen_range(0..key_range / 4);
                    let hi = key_range - 1 - rng.gen_range(0..key_range / 4);
                    let spec = RangeSpec::inclusive(lo, hi);
                    // One in 8 drains is timed (sampled by index, so the
                    // sample cannot be biased toward slow drains).
                    let timed_at = drains.is_multiple_of(8).then(Instant::now);
                    match mode {
                        ReadMode::OneShot => {
                            let listing = RangeRead::collect_range(&*store, spec);
                            entries += listing.len() as u64;
                            snapshots += 1;
                            std::hint::black_box(listing);
                        }
                        ReadMode::Cursor(chunk) => {
                            let mut cursor = store.scan(spec);
                            loop {
                                let page = cursor.next_chunk(chunk);
                                if page.is_empty() {
                                    break;
                                }
                                entries += page.len() as u64;
                                std::hint::black_box(page);
                            }
                            if cursor.consistency() == ScanConsistency::Snapshot {
                                snapshots += 1;
                            }
                        }
                    }
                    if let Some(at) = timed_at {
                        latency.observe(at.elapsed());
                    }
                    drains += 1;
                }
                snapshot_drains.fetch_add(snapshots, Ordering::Relaxed);
                (drains, entries)
            })
        })
        .collect();

    let writers: Vec<_> = (0..writer_threads)
        .map(|t| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64 + 101).wrapping_mul(0xC0FFEE));
                barrier.wait();
                let mut writes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..16 {
                        let k = rng.gen_range(0..key_range);
                        if rng.gen_bool(0.5) {
                            store.insert(k, ());
                        } else {
                            store.remove(&k);
                        }
                        writes += 1;
                    }
                    // Throttle to a bounded write rate (~100k/s/writer): an
                    // unthrottled storm saturates every shard's front and
                    // starves whole-keyspace drains indefinitely — real
                    // (lock-free, not wait-free, see DESIGN.md), but a
                    // bench cell must terminate, and a bounded mixed load
                    // is the realistic serving shape anyway.
                    std::thread::sleep(Duration::from_micros(150));
                }
                writes
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let (drains, entries) = readers
        .into_iter()
        .map(|h| h.join().unwrap())
        .fold((0u64, 0u64), |(d, e), (dd, ee)| (d + dd, e + ee));
    let writes: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed().as_secs_f64();
    let stats = store.store_stats();
    let chunk_early_exits: u64 = store
        .shard_stats()
        .iter()
        .map(|s| s.fast_range_early_exits)
        .sum();
    let drain_latency = latency.snapshot();
    let mut window = metrics_of(&store).delta_since(&before);
    window.push_histogram("drain_latency_ns", drain_latency.clone());
    Point {
        workload: workload.name.to_string(),
        read_mode: mode.name(),
        reader_threads,
        drains_per_sec: drains as f64 / elapsed,
        entries_per_sec: entries as f64 / elapsed,
        writes_per_sec: writes as f64 / elapsed,
        snapshot_drain_fraction: if drains == 0 {
            0.0
        } else {
            snapshot_drains.load(Ordering::Relaxed) as f64 / drains as f64
        },
        scan_resumes: stats.scan_resumes,
        chunk_early_exits,
        drain_p50_ns: drain_latency.quantile(0.50),
        drain_p99_ns: drain_latency.quantile(0.99),
        drain_p999_ns: drain_latency.quantile(0.999),
        window,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let key_range: i64 = if smoke { 40_000 } else { 200_000 };
    let duration = Duration::from_millis(if smoke { 120 } else { 400 });
    let threads = [1usize, 4, 8];
    let chunks = [16usize, 256, 4096];

    let workloads = [
        Workload {
            name: "drain-quiescent",
            with_writers: false,
        },
        Workload {
            name: "drain-under-writers",
            with_writers: true,
        },
    ];

    let mut points = Vec::new();
    let mut overheads = Vec::new();
    for workload in workloads {
        for &t in &threads {
            let oneshot = measure(workload, ReadMode::OneShot, t, key_range, duration, 42);
            let oneshot_rate = oneshot.drains_per_sec;
            points.push(oneshot);
            for &chunk in &chunks {
                let cursor = measure(
                    workload,
                    ReadMode::Cursor(chunk),
                    t,
                    key_range,
                    duration,
                    42,
                );
                println!(
                    "{:<20} t={} chunk={:<5} one-shot {:>8.0} drains/s   cursor {:>8.0} drains/s   ratio {:>5.2}   (snapshot {:>4.0}% / resumes {} / early-exits {})",
                    workload.name,
                    t,
                    chunk,
                    oneshot_rate,
                    cursor.drains_per_sec,
                    cursor.drains_per_sec / oneshot_rate,
                    cursor.snapshot_drain_fraction * 100.0,
                    cursor.scan_resumes,
                    cursor.chunk_early_exits,
                );
                overheads.push(Overhead {
                    workload: workload.name.to_string(),
                    chunk,
                    reader_threads: t,
                    oneshot_drains_per_sec: oneshot_rate,
                    cursor_drains_per_sec: cursor.drains_per_sec,
                    relative_throughput: cursor.drains_per_sec / oneshot_rate,
                });
                points.push(cursor);
            }
        }
    }

    if smoke {
        // CI gate: every embedded metrics snapshot must survive the JSON
        // exporter round-trip (serialize -> serde_json -> deserialize -> ==).
        for point in &points {
            let back = wft_obs::MetricsSnapshot::from_json(&point.window.to_json())
                .expect("window metrics parse back");
            assert_eq!(
                back, point.window,
                "MetricsSnapshot JSON round-trip must be lossless"
            );
        }
        println!(
            "smoke: metrics JSON round-trip ok ({} windows)",
            points.len()
        );
    }

    let report = Report {
        smoke,
        key_range,
        shards: SHARDS,
        writer_threads: WRITER_THREADS,
        duration_ms: duration.as_millis() as u64,
        points,
        overheads,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_scan.json", &json).expect("write BENCH_scan.json");
    println!("wrote BENCH_scan.json");
}
