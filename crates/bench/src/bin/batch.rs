//! Atomic batch-commit benchmark (`BENCH_batch.json`).
//!
//! Measures what the publish-at-front commit window costs (and buys) on
//! `ShardedStore`'s cross-shard batches: the same striped-writer workload
//! is run through the pre-gate **stitched** path
//! (`stitched_apply_batch`: per-op gated application, no commit window —
//! a concurrent cut reader may observe the batch half-applied) and the
//! **atomic** path (`apply_batch`: validate, apply behind the commit
//! gate, publish at the front in one step), at 1/4/8 writer threads over
//! an 8-shard store. Concurrent cut readers keep re-reading the stripe
//! and count torn observations — stripes whose keys carry more than one
//! value inside a single validated read. Writer throughput, the commit
//! counters, and the torn tallies land in `BENCH_batch.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin batch            # full run
//! cargo run --release --bin batch -- --smoke # short CI run, hard asserts
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use serde::Serialize;
use wft_store::{ShardedStore, StoreOp};

const SHARDS: usize = 8;
/// Keys per stripe: two per shard, so the equi-depth split of the
/// stripe-only prefill puts a shard boundary inside every batch.
const STRIPE_KEYS: usize = SHARDS * 2;
const READER_THREADS: usize = 2;

/// One measured configuration point.
#[derive(Debug, Serialize)]
struct Point {
    batch_mode: String,
    writer_threads: usize,
    batches_per_sec: f64,
    /// `batches_per_sec × STRIPE_KEYS` — per-operation throughput.
    ops_per_sec: f64,
    reads_per_sec: f64,
    /// Cut-validated reads that saw a half-applied stripe. The atomic
    /// path must keep this at exactly zero; the stitched baseline is
    /// *allowed* to tear (that is what the commit gate buys).
    torn_reads: u64,
    batch_commits: u64,
    commit_gate_waits: u64,
    /// Median sampled per-batch commit latency (ns; one in 8 is timed).
    commit_p50_ns: u64,
    /// 99th-percentile sampled per-batch commit latency (ns).
    commit_p99_ns: u64,
    /// The store's `wft-obs` metrics delta over the measurement window,
    /// plus the writer latency histogram under `commit_latency_ns`.
    window: wft_obs::MetricsSnapshot,
}

/// Atomic vs stitched ratio for one writer count.
#[derive(Debug, Serialize)]
struct Overhead {
    writer_threads: usize,
    stitched_batches_per_sec: f64,
    atomic_batches_per_sec: f64,
    /// `atomic / stitched`: 1.0 means the commit window costs nothing
    /// over the tearing per-shard baseline.
    relative_throughput: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    smoke: bool,
    key_range: i64,
    shards: usize,
    stripe_keys: usize,
    reader_threads: usize,
    duration_ms: u64,
    points: Vec<Point>,
    overheads: Vec<Overhead>,
}

#[derive(Clone, Copy, PartialEq)]
enum BatchMode {
    Stitched,
    Atomic,
}

impl BatchMode {
    fn name(self) -> &'static str {
        match self {
            BatchMode::Stitched => "stitched",
            BatchMode::Atomic => "atomic",
        }
    }
}

fn metrics_of(store: &ShardedStore<i64, i64>) -> wft_obs::MetricsSnapshot {
    let mut out = wft_obs::MetricsSnapshot::new();
    wft_obs::MetricsSource::collect_metrics(store, &mut out);
    out
}

/// The stripe: `STRIPE_KEYS` keys spread uniformly over the key range.
fn stripe(key_range: i64) -> Vec<i64> {
    (0..STRIPE_KEYS as i64)
        .map(|i| i * (key_range / STRIPE_KEYS as i64) + 1)
        .collect()
}

/// One whole-stripe rewrite: every key set to `value` in a single batch.
fn stripe_batch(keys: &[i64], value: i64) -> Vec<StoreOp<i64, i64>> {
    keys.iter()
        .map(|&key| StoreOp::InsertOrReplace { key, value })
        .collect()
}

fn measure(mode: BatchMode, writer_threads: usize, key_range: i64, duration: Duration) -> Point {
    let keys = stripe(key_range);
    let store: Arc<ShardedStore<i64, i64>> = Arc::new(ShardedStore::from_entries(
        keys.iter().map(|&k| (k, 0)),
        SHARDS,
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(writer_threads + READER_THREADS + 1));
    let torn = Arc::new(AtomicU64::new(0));
    let latency = Arc::new(wft_obs::LatencyHistogram::new());
    let before = metrics_of(&store);

    let writers: Vec<_> = (0..writer_threads)
        .map(|w| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let latency = Arc::clone(&latency);
            let keys = keys.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut batches = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..16 {
                        // Tag values by writer and batch index so any torn
                        // read is attributable; the whole stripe is one
                        // value per batch.
                        let value = ((w as i64) << 40) | (batches as i64 + 1);
                        let batch = stripe_batch(&keys, value);
                        // One in 8 batches is timed (sampled by index, so
                        // the sample cannot be biased toward slow commits).
                        let timed_at = batches.is_multiple_of(8).then(Instant::now);
                        match mode {
                            BatchMode::Stitched => {
                                std::hint::black_box(
                                    store.stitched_apply_batch(batch).expect("stripe validates"),
                                );
                            }
                            BatchMode::Atomic => {
                                std::hint::black_box(
                                    store.apply_batch(batch).expect("stripe validates"),
                                );
                            }
                        }
                        if let Some(at) = timed_at {
                            latency.observe(at.elapsed());
                        }
                        batches += 1;
                    }
                }
                batches
            })
        })
        .collect();

    let readers: Vec<_> = (0..READER_THREADS)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let torn = Arc::clone(&torn);
            std::thread::spawn(move || {
                barrier.wait();
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..16 {
                        let entries = store.collect_range(0, i64::MAX);
                        let uniform = entries.len() == STRIPE_KEYS
                            && entries.iter().all(|&(_, v)| v == entries[0].1);
                        if !uniform {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                        reads += 1;
                    }
                }
                reads
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let batches: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    let reads: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed().as_secs_f64();
    let stats = store.store_stats();
    let commit_latency = latency.snapshot();
    let mut window = metrics_of(&store).delta_since(&before);
    window.push_histogram("commit_latency_ns", commit_latency.clone());
    Point {
        batch_mode: mode.name().to_string(),
        writer_threads,
        batches_per_sec: batches as f64 / elapsed,
        ops_per_sec: (batches * STRIPE_KEYS as u64) as f64 / elapsed,
        reads_per_sec: reads as f64 / elapsed,
        torn_reads: torn.load(Ordering::Relaxed),
        batch_commits: stats.batch_commits,
        commit_gate_waits: stats.commit_gate_waits,
        commit_p50_ns: commit_latency.quantile(0.50),
        commit_p99_ns: commit_latency.quantile(0.99),
        window,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let key_range: i64 = if smoke { 40_000 } else { 200_000 };
    let duration = Duration::from_millis(if smoke { 120 } else { 400 });
    let threads = [1usize, 4, 8];

    let mut points = Vec::new();
    let mut overheads = Vec::new();
    for &t in &threads {
        let stitched = measure(BatchMode::Stitched, t, key_range, duration);
        let atomic = measure(BatchMode::Atomic, t, key_range, duration);
        println!(
            "writers={}  stitched {:>9.0} batches/s ({} torn reads)   atomic {:>9.0} batches/s ({} torn reads)   ratio {:>5.2}   (commits {} / gate waits {})",
            t,
            stitched.batches_per_sec,
            stitched.torn_reads,
            atomic.batches_per_sec,
            atomic.torn_reads,
            atomic.batches_per_sec / stitched.batches_per_sec,
            atomic.batch_commits,
            atomic.commit_gate_waits,
        );
        overheads.push(Overhead {
            writer_threads: t,
            stitched_batches_per_sec: stitched.batches_per_sec,
            atomic_batches_per_sec: atomic.batches_per_sec,
            relative_throughput: atomic.batches_per_sec / stitched.batches_per_sec,
        });
        points.push(stitched);
        points.push(atomic);
    }

    if smoke {
        // CI gate: the commit window's whole point is that cut readers
        // never see a half-applied batch — and every atomic batch must
        // have gone through the gate (the stitched baseline bypasses it).
        for point in &points {
            if point.batch_mode == "atomic" {
                assert_eq!(
                    point.torn_reads, 0,
                    "writers={}: a cut reader saw a torn stripe on the atomic path",
                    point.writer_threads
                );
                assert!(
                    point.batch_commits > 0,
                    "writers={}: atomic batches must commit through the gate",
                    point.writer_threads
                );
            } else {
                assert_eq!(
                    point.batch_commits, 0,
                    "writers={}: the stitched baseline must bypass the commit gate",
                    point.writer_threads
                );
            }
            let back = wft_obs::MetricsSnapshot::from_json(&point.window.to_json())
                .expect("window metrics parse back");
            assert_eq!(
                back, point.window,
                "MetricsSnapshot JSON round-trip must be lossless"
            );
        }
        println!(
            "smoke: zero torn atomic reads across {} points",
            points.len()
        );
    }

    let report = Report {
        smoke,
        key_range,
        shards: SHARDS,
        stripe_keys: STRIPE_KEYS,
        reader_threads: READER_THREADS,
        duration_ms: duration.as_millis() as u64,
        points,
        overheads,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!("wrote BENCH_batch.json");
}
