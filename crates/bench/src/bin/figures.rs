//! Reproduces every figure of the paper's evaluation (plus the additional
//! experiments of DESIGN.md §4) as throughput tables.
//!
//! Usage:
//!
//! ```text
//! cargo run -p wft-bench --release --bin figures -- [experiment] [--paper] [--csv]
//!
//! experiments:
//!   fig7              Contains benchmark          (paper Figure 7)
//!   fig8              Insert-delete benchmark     (paper Figure 8)
//!   fig9              Successful-insert benchmark (paper Figure 9)
//!   count-scaling     count vs collect().len()    (experiment E4)
//!   rebuild-ablation  rebuild factor sweep        (experiment E5)
//!   root-queue        lock-free vs wait-free root (experiment E6)
//!   range-mix         mixed workloads with counts (experiment E7)
//!   all               everything above
//!
//! flags:
//!   --paper   use the paper's workload sizes and intervals (long!)
//!   --csv     additionally print CSV after each table
//! ```

use wft_bench::{
    count_scaling_rows, figure_rows, range_mix_rows, rebuild_ablation_rows, root_queue_rows,
    ExperimentScale,
};
use wft_workload::{render_csv, render_table, FigureRow, TreeImpl, WorkloadSpec};

fn emit(title: &str, rows: &[FigureRow], csv: bool) {
    println!("{}", render_table(title, rows));
    if csv {
        println!("{}", render_csv(rows));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let csv = args.iter().any(|a| a == "--csv");
    let scale = if paper {
        ExperimentScale::Paper
    } else {
        ExperimentScale::Quick
    };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let run_fig7 = || {
        emit(
            "Figure 7: Contains benchmark (throughput, ops/s)",
            &figure_rows(WorkloadSpec::contains_benchmark(), &TreeImpl::ALL, scale),
            csv,
        )
    };
    let run_fig8 = || {
        emit(
            "Figure 8: Insert-Delete benchmark (throughput, ops/s)",
            &figure_rows(WorkloadSpec::insert_delete(), &TreeImpl::ALL, scale),
            csv,
        )
    };
    let run_fig9 = || {
        emit(
            "Figure 9: Successful-Insert benchmark (throughput, ops/s)",
            &figure_rows(WorkloadSpec::successful_insert(), &TreeImpl::ALL, scale),
            csv,
        )
    };
    let run_count = || {
        emit(
            "E4: aggregate count vs collect().len() (single thread)",
            &count_scaling_rows(scale),
            csv,
        )
    };
    let run_rebuild = || {
        emit(
            "E5: rebuild factor ablation (insert-delete workload)",
            &rebuild_ablation_rows(scale),
            csv,
        )
    };
    let run_root = || {
        emit(
            "E6: lock-free vs wait-free root queue (successful-insert workload)",
            &root_queue_rows(scale),
            csv,
        )
    };
    let run_mix = || {
        emit(
            "E7: mixed workloads with aggregate range queries",
            &range_mix_rows(scale),
            csv,
        )
    };

    match which.as_str() {
        "fig7" => run_fig7(),
        "fig8" => run_fig8(),
        "fig9" => run_fig9(),
        "count-scaling" => run_count(),
        "rebuild-ablation" => run_rebuild(),
        "root-queue" => run_root(),
        "range-mix" => run_mix(),
        "all" => {
            run_fig7();
            run_fig8();
            run_fig9();
            run_count();
            run_rebuild();
            run_root();
            run_mix();
        }
        other => {
            eprintln!("unknown experiment `{other}`; see the module docs for the list");
            std::process::exit(2);
        }
    }
}
