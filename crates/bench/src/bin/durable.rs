//! Durable-store group-commit benchmark (`BENCH_durable.json`).
//!
//! Measures what durability costs and what group commit buys back: the same
//! batch-write workload is run against a [`DurableStore`] at 1/2/4/8 writer
//! threads, with and without fsync-per-group, with one online checkpoint
//! taken mid-window. The headline relationship is **commit latency vs group
//! size**: with one writer every commit pays a full `write + fsync`; with N
//! writers the log thread coalesces whatever queued while the previous
//! group was flushing, so fsyncs are amortised (`wal_fsyncs / commits`
//! falls) and per-commit latency grows far slower than writer count.
//!
//! Every cell lands in `BENCH_durable.json` with the sampled commit-latency
//! quantiles, the observed group-size distribution, the fsync amortisation
//! ratio, and the full `wft-obs` metrics delta over the measurement window.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin durable            # full run
//! cargo run --release --bin durable -- --smoke # short CI run
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use wft_durable::{DurableConfig, DurableStore, ScratchDir};
use wft_store::StoreOp;

const SHARDS: usize = 4;
const BATCH_OPS: usize = 8;
const KEYSPACE: i64 = 1 << 16;

/// One measured (writers, fsync) cell.
#[derive(Debug, Serialize)]
struct Point {
    writer_threads: usize,
    fsync: bool,
    batch_ops: usize,
    commits_per_sec: f64,
    ops_per_sec: f64,
    /// Median acknowledged-commit latency (ns): enqueue to fsync'd + applied.
    commit_p50_ns: u64,
    /// 99th-percentile commit latency (ns).
    commit_p99_ns: u64,
    /// 99.9th-percentile commit latency (ns).
    commit_p999_ns: u64,
    /// Mean batches per WAL flush group over the window.
    mean_group_size: f64,
    /// 99th-percentile group size over the window.
    group_p99: u64,
    /// `wal_fsyncs / commits`: 1.0 means every commit paid its own fsync;
    /// group commit drives this toward `1 / mean_group_size`.
    fsyncs_per_commit: f64,
    /// Commits that rode a group another commit opened (`wal_stalls` delta).
    coalesced_commits: u64,
    wal_bytes: u64,
    /// Wall-clock cost of the one online checkpoint taken mid-window (ns).
    checkpoint_ns: u64,
    /// Live WAL segments deleted by that checkpoint's truncation.
    segments_truncated: u64,
    /// The store's full `wft-obs` metrics delta over the measurement window.
    window: wft_obs::MetricsSnapshot,
}

#[derive(Debug, Serialize)]
struct Report {
    smoke: bool,
    shards: usize,
    keyspace: i64,
    batch_ops: usize,
    duration_ms: u64,
    points: Vec<Point>,
}

/// The durable store's `wft-obs` metrics through its `MetricsSource` impl.
fn metrics_of(store: &DurableStore<i64, i64>) -> wft_obs::MetricsSnapshot {
    let mut out = wft_obs::MetricsSnapshot::new();
    wft_obs::MetricsSource::collect_metrics(store, &mut out);
    out
}

fn hist_delta(
    window_end: &wft_obs::MetricsSnapshot,
    window_start: &wft_obs::MetricsSnapshot,
    name: &str,
) -> wft_obs::HistogramSnapshot {
    let end = window_end.histogram(name).cloned().unwrap_or_default();
    match window_start.histogram(name) {
        Some(earlier) => end.delta_since(earlier),
        None => end,
    }
}

fn measure(writer_threads: usize, fsync: bool, duration: Duration, seed: u64) -> Point {
    let scratch = ScratchDir::new("bench-durable");
    let config = DurableConfig {
        shards: SHARDS,
        fsync,
        ..DurableConfig::default()
    };
    let store: Arc<DurableStore<i64, i64>> =
        Arc::new(DurableStore::open_with_config(scratch.path(), config).unwrap());

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(writer_threads + 1));
    let before = metrics_of(&store);

    let writers: Vec<_> = (0..writer_threads)
        .map(|t| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64 + 1).wrapping_mul(0xD1CE));
                barrier.wait();
                let mut commits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Batches address each key at most once: draw from a
                    // per-batch stripe so dedup is free.
                    let base = rng.gen_range(0..KEYSPACE - BATCH_OPS as i64);
                    let batch: Vec<StoreOp<i64, i64>> = (0..BATCH_OPS as i64)
                        .map(|i| {
                            let key = base + i;
                            if rng.gen_bool(0.25) {
                                StoreOp::Remove { key }
                            } else {
                                StoreOp::InsertOrReplace { key, value: key }
                            }
                        })
                        .collect();
                    store.apply_durable(batch).unwrap();
                    commits += 1;
                }
                commits
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    // One online checkpoint mid-window: writers keep committing through it
    // (the cut is drained via a snapshot-consistent scan cursor, never by
    // pausing writers), and its truncation cost lands in the cell.
    std::thread::sleep(duration / 2);
    let checkpoint_at = Instant::now();
    let checkpoint = store.checkpoint().unwrap();
    let checkpoint_ns = checkpoint_at.elapsed().as_nanos() as u64;
    std::thread::sleep(duration / 2);
    stop.store(true, Ordering::Relaxed);
    let commits: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed().as_secs_f64();

    let end = metrics_of(&store);
    let window = end.delta_since(&before);
    let commit_latency = hist_delta(&end, &before, "durable_commit_latency_ns");
    let group_size = hist_delta(&end, &before, "durable_group_size");
    let fsyncs = window.counter("durable_wal_fsyncs").unwrap_or(0);
    let stalls = window.counter("durable_wal_stalls").unwrap_or(0);
    let wal_bytes = window.counter("durable_wal_bytes").unwrap_or(0);
    store.shutdown();

    Point {
        writer_threads,
        fsync,
        batch_ops: BATCH_OPS,
        commits_per_sec: commits as f64 / elapsed,
        ops_per_sec: (commits as usize * BATCH_OPS) as f64 / elapsed,
        commit_p50_ns: commit_latency.quantile(0.50),
        commit_p99_ns: commit_latency.quantile(0.99),
        commit_p999_ns: commit_latency.quantile(0.999),
        mean_group_size: group_size.mean_ns(),
        group_p99: group_size.quantile(0.99),
        fsyncs_per_commit: if commits == 0 {
            0.0
        } else {
            fsyncs as f64 / commits as f64
        },
        coalesced_commits: stalls,
        wal_bytes,
        checkpoint_ns,
        segments_truncated: checkpoint.segments_truncated,
        window,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration = Duration::from_millis(if smoke { 120 } else { 500 });
    let threads: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut points = Vec::new();
    for &fsync in &[true, false] {
        for &t in threads {
            let point = measure(t, fsync, duration, 42);
            println!(
                "writers={:<2} fsync={:<5} {:>9.0} commits/s   p50 {:>9} ns   p99 {:>9} ns   \
                 group mean {:>5.1} / p99 {:<4}   fsyncs/commit {:>5.3}   ckpt {:>6.2} ms",
                point.writer_threads,
                fsync,
                point.commits_per_sec,
                point.commit_p50_ns,
                point.commit_p99_ns,
                point.mean_group_size,
                point.group_p99,
                point.fsyncs_per_commit,
                point.checkpoint_ns as f64 / 1e6,
            );
            points.push(point);
        }
    }

    if smoke {
        // CI gates: the windows must survive the JSON exporter round-trip,
        // and group commit must actually have engaged — multi-writer cells
        // may never amortise worse than one fsync per commit.
        for point in &points {
            let back = wft_obs::MetricsSnapshot::from_json(&point.window.to_json())
                .expect("window metrics parse back");
            assert_eq!(
                back, point.window,
                "MetricsSnapshot JSON round-trip must be lossless"
            );
            assert!(
                point.fsyncs_per_commit <= 1.0 + 1e-9,
                "a commit never pays more than one fsync"
            );
        }
        println!("smoke: metrics JSON round-trip ok ({} cells)", points.len());
    }

    let report = Report {
        smoke,
        shards: SHARDS,
        keyspace: KEYSPACE,
        batch_ops: BATCH_OPS,
        duration_ms: duration.as_millis() as u64,
        points,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_durable.json", &json).expect("write BENCH_durable.json");
    println!("wrote BENCH_durable.json");
}
