//! Read fast-path before/after benchmark (`BENCH_read_fastpath.json`).
//!
//! Measures the throughput effect of PR 3's two-tier read path on the
//! wait-free tree: the same read-heavy workloads are run with reads forced
//! through the descriptor machinery (`ReadPath::Descriptor`, the "before"
//! side) and with the fast paths enabled (`ReadPath::Fast`, the default
//! "after" side), at 1/4/8 threads, and the per-point throughput plus the
//! fast-hit/fallback counters are written to `BENCH_read_fastpath.json` so
//! the repo's perf trajectory is recorded alongside the code.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin read_fastpath            # full run
//! cargo run --release --bin read_fastpath -- --smoke # short CI run
//! ```

use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;
use wft_core::{ReadPath, TreeConfig, WaitFreeTree};
use wft_workload::harness::timed_run;
use wft_workload::WorkloadSpec;

/// One measured configuration point.
#[derive(Debug, Serialize)]
struct Point {
    workload: String,
    threads: usize,
    read_path: String,
    ops_per_sec: f64,
    fast_point_reads: u64,
    fast_range_hits: u64,
    range_fallbacks: u64,
    /// Median sampled per-op latency (ns; the harness times one in
    /// `wft_workload::LATENCY_SAMPLE` ops).
    p50_ns: u64,
    /// 99th-percentile sampled per-op latency (ns).
    p99_ns: u64,
    /// 99.9th-percentile sampled per-op latency (ns).
    p999_ns: u64,
    /// The tree's full `wft-obs` metrics delta over the measurement window,
    /// plus the harness latency histogram under `op_latency_ns`.
    window: wft_obs::MetricsSnapshot,
}

/// The tree's `wft-obs` metrics through its `MetricsSource` impl.
fn metrics_of(tree: &WaitFreeTree<i64>) -> wft_obs::MetricsSnapshot {
    let mut out = wft_obs::MetricsSnapshot::new();
    wft_obs::MetricsSource::collect_metrics(tree, &mut out);
    out
}

/// Before/after ratio for one (workload, threads) pair.
#[derive(Debug, Serialize)]
struct Speedup {
    workload: String,
    threads: usize,
    descriptor_ops_per_sec: f64,
    fast_ops_per_sec: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    smoke: bool,
    key_range: i64,
    duration_ms: u64,
    threads: Vec<usize>,
    points: Vec<Point>,
    speedups: Vec<Speedup>,
}

fn measure(
    spec: &WorkloadSpec,
    threads: usize,
    read_path: ReadPath,
    duration: Duration,
    seed: u64,
) -> Point {
    let prefill = spec.prefill_keys(seed);
    let config = TreeConfig {
        read_path,
        ..TreeConfig::default()
    };
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::from_entries_with_config(
        prefill.iter().map(|&k| (k, ())),
        config,
    ));
    let before = metrics_of(&tree);
    let result = timed_run(
        Arc::clone(&tree) as _,
        spec,
        threads,
        duration,
        seed ^ 0xBEEF,
    );
    let stats = tree.stats();
    let mut window = metrics_of(&tree).delta_since(&before);
    window.push_histogram("op_latency_ns", result.latency.clone());
    Point {
        workload: spec.name.to_string(),
        threads,
        read_path: match read_path {
            ReadPath::Fast => "fast".to_string(),
            ReadPath::Descriptor => "descriptor".to_string(),
        },
        ops_per_sec: result.ops_per_sec,
        fast_point_reads: stats.fast_point_reads,
        fast_range_hits: stats.fast_range_hits,
        range_fallbacks: stats.range_fallbacks,
        p50_ns: result.latency.quantile(0.50),
        p99_ns: result.latency.quantile(0.99),
        p999_ns: result.latency.quantile(0.999),
        window,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let key_range: i64 = if smoke { 50_000 } else { 200_000 };
    let duration = Duration::from_millis(if smoke { 150 } else { 400 });
    let threads = vec![1usize, 4, 8];

    // The three read-heavy shapes the tentpole targets: pure point reads,
    // pure aggregate counts, and the paper's motivating mixed workload.
    let workloads = vec![
        WorkloadSpec::contains_benchmark().scaled_down(key_range),
        WorkloadSpec::count_only(key_range, 0.01, false),
        WorkloadSpec::range_mix(20.0, 0.01).scaled_down(key_range),
    ];

    let mut points = Vec::new();
    let mut speedups = Vec::new();
    for spec in &workloads {
        for &t in &threads {
            let before = measure(spec, t, ReadPath::Descriptor, duration, 42);
            let after = measure(spec, t, ReadPath::Fast, duration, 42);
            println!(
                "{:<12} t={}  descriptor {:>12.0} ops/s   fast {:>12.0} ops/s   speedup {:>5.2}x   (fast hits {} / fallbacks {})",
                spec.name,
                t,
                before.ops_per_sec,
                after.ops_per_sec,
                after.ops_per_sec / before.ops_per_sec,
                after.fast_point_reads + after.fast_range_hits,
                after.range_fallbacks,
            );
            speedups.push(Speedup {
                workload: spec.name.to_string(),
                threads: t,
                descriptor_ops_per_sec: before.ops_per_sec,
                fast_ops_per_sec: after.ops_per_sec,
                speedup: after.ops_per_sec / before.ops_per_sec,
            });
            points.push(before);
            points.push(after);
        }
    }

    if smoke {
        // CI gate: every embedded metrics snapshot must survive the JSON
        // exporter round-trip (serialize -> serde_json -> deserialize -> ==).
        for point in &points {
            let back = wft_obs::MetricsSnapshot::from_json(&point.window.to_json())
                .expect("window metrics parse back");
            assert_eq!(
                back, point.window,
                "MetricsSnapshot JSON round-trip must be lossless"
            );
        }
        println!(
            "smoke: metrics JSON round-trip ok ({} windows)",
            points.len()
        );
    }

    let report = Report {
        smoke,
        key_range,
        duration_ms: duration.as_millis() as u64,
        threads,
        points,
        speedups,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_read_fastpath.json", &json).expect("write BENCH_read_fastpath.json");
    println!("wrote BENCH_read_fastpath.json");
}
