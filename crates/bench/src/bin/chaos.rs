//! Fault-injection chaos harness (`BENCH_chaos.json`).
//!
//! Three scenarios drive the durable store's failure policy — retry with
//! backoff, degraded read-only mode, resume — under deterministic fault
//! schedules, with hard asserts on the acceptance invariants:
//!
//! * **drizzle**: writer threads commit under a periodic transient-fault
//!   drizzle; every acknowledged write must survive, the journal must
//!   absorb every fault through its retry loop (no degradation), and the
//!   throughput cost of the drizzle is measured against a clean run.
//! * **outage cycles**: writers ride through repeated
//!   outage → degrade → heal → resume cycles; degraded windows must serve
//!   reads, refuse writes fast, and resume cleanly, and a final reopen on
//!   clean storage may only ever be *newer* per key than the last
//!   acknowledged value.
//! * **seeded schedules**: single-threaded random command scripts
//!   (batches, checkpoints, scheduled transient faults, short writes,
//!   outages, heals, resumes) with **fixed seeds**, checked step-by-step
//!   against an acknowledged-prefix oracle and reopened twice — recovery
//!   must equal the fold of the acknowledged batches (plus at most the
//!   one in-flight batch whose escalation the caller saw fail), and must
//!   be idempotent.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin chaos            # full run
//! cargo run --release --bin chaos -- --smoke # short CI run (fixed seeds)
//! ```

use std::collections::{BTreeMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use wft_durable::{
    DurableConfig, DurableError, DurableStore, Fault, FaultKind, FaultyStorage, RetryPolicy,
    ScratchDir,
};
use wft_store::{PointMap, RangeRead, RangeSpec, StoreOp};

const TRANSIENT_KINDS: [io::ErrorKind; 3] = [
    io::ErrorKind::Interrupted,
    io::ErrorKind::TimedOut,
    io::ErrorKind::Other,
];

/// Fast-failing config so escalations happen promptly; tiny segments so
/// schedules also land on rotations and truncations.
fn chaos_config() -> DurableConfig {
    DurableConfig {
        shards: 3,
        segment_bytes: 4 * 1024,
        retry: RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
        },
        ..DurableConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Scenario 1: transient drizzle
// ---------------------------------------------------------------------------

#[derive(Debug, Serialize)]
struct DrizzlePoint {
    writer_threads: usize,
    /// Every `fault_period`-th storage op fails once transiently
    /// (0 = clean baseline).
    fault_period: u64,
    commits_per_sec: f64,
    io_retries: u64,
    /// p99 acknowledged-commit latency over the window (ns).
    commit_p99_ns: u64,
}

fn run_drizzle(writer_threads: usize, fault_period: u64, duration: Duration) -> DrizzlePoint {
    let scratch = ScratchDir::new("chaos-drizzle");
    let faulty = FaultyStorage::over_fs();
    let store: Arc<DurableStore<i64, i64>> = Arc::new(
        DurableStore::open_with_storage(scratch.path(), chaos_config(), Arc::new(faulty.clone()))
            .unwrap(),
    );
    if fault_period > 0 {
        faulty.every(fault_period, io::ErrorKind::Interrupted);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..writer_threads)
        .map(|t| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let base = t as i64 * 1_000_000;
                let mut acked = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    store
                        .apply_durable(vec![StoreOp::InsertOrReplace {
                            key: base + (acked % 512),
                            value: acked,
                        }])
                        .expect("transient drizzle must never surface to writers");
                    acked += 1;
                }
                acked as u64
            })
        })
        .collect();
    let started = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let commits: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = started.elapsed().as_secs_f64();

    let stats = store.stats();
    assert_eq!(stats.degraded, 0, "a drizzle must never degrade the store");
    assert_eq!(stats.degraded_entries, 0);
    if fault_period > 0 {
        assert!(stats.io_retries > 0, "the drizzle must really have fired");
    }
    assert_eq!(stats.wal_appends, commits, "every ack is one WAL record");
    DrizzlePoint {
        writer_threads,
        fault_period,
        commits_per_sec: commits as f64 / elapsed,
        io_retries: stats.io_retries,
        commit_p99_ns: stats.commit_latency.quantile(0.99),
    }
}

// ---------------------------------------------------------------------------
// Scenario 2: outage / resume cycles
// ---------------------------------------------------------------------------

#[derive(Debug, Serialize)]
struct CyclesOutcome {
    writer_threads: usize,
    cycles: u64,
    acked_writes: u64,
    degraded_write_rejections: u64,
    io_retries: u64,
}

fn run_cycles(writer_threads: usize, target_cycles: u64) -> CyclesOutcome {
    let scratch = ScratchDir::new("chaos-cycles");
    let faulty = FaultyStorage::over_fs();
    let store: Arc<DurableStore<i64, i64>> = Arc::new(
        DurableStore::open_with_storage(scratch.path(), chaos_config(), Arc::new(faulty.clone()))
            .unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let rejections = Arc::new(AtomicUsize::new(0));

    let writers: Vec<_> = (0..writer_threads)
        .map(|t| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let rejections = Arc::clone(&rejections);
            std::thread::spawn(move || {
                let base = t as i64 * 1_000_000;
                let mut acked: BTreeMap<i64, i64> = BTreeMap::new();
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let key = base + (i % 256);
                    match store.apply_durable(vec![StoreOp::InsertOrReplace { key, value: i }]) {
                        Ok(_) => {
                            acked.insert(key, i);
                        }
                        Err(DurableError::Degraded(_)) => {
                            rejections.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(other) => panic!("unexpected write error: {other:?}"),
                    }
                    i += 1;
                }
                acked
            })
        })
        .collect();

    let mut cycles = 0u64;
    for _ in 0..target_cycles {
        std::thread::sleep(Duration::from_millis(4));
        faulty.outage_now(io::ErrorKind::Other);
        while !store.is_degraded() {
            std::thread::sleep(Duration::from_micros(200));
        }
        // Degraded reads must keep serving.
        let _ = RangeRead::count(&*store, RangeSpec::all());
        std::thread::sleep(Duration::from_millis(2));
        faulty.heal();
        assert_eq!(
            store.try_resume(),
            Ok(true),
            "resume after heal must succeed"
        );
        cycles += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let mut acked: BTreeMap<i64, i64> = BTreeMap::new();
    for writer in writers {
        acked.extend(writer.join().unwrap());
    }

    // Quiescent memory == exactly the acknowledged map.
    for (key, value) in &acked {
        assert_eq!(PointMap::get(&*store, key), Some(*value));
    }
    let stats = store.stats();
    assert_eq!(stats.degraded_entries, cycles);
    assert_eq!(stats.resumes, cycles);
    store.shutdown();
    drop(store);

    // Reopen on clean storage: recovery may only be newer per key.
    let reopened: DurableStore<i64, i64> = DurableStore::open(scratch.path()).unwrap();
    for (key, value) in &acked {
        let recovered = PointMap::get(&reopened, key)
            .unwrap_or_else(|| panic!("acknowledged key {key} lost in recovery"));
        assert!(recovered >= *value, "key {key} went backwards");
    }
    CyclesOutcome {
        writer_threads,
        cycles,
        acked_writes: acked.len() as u64,
        degraded_write_rejections: rejections.load(Ordering::Relaxed) as u64,
        io_retries: stats.io_retries,
    }
}

// ---------------------------------------------------------------------------
// Scenario 3: seeded random fault schedules vs the acked-prefix oracle
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Serialize)]
struct ScheduleTotals {
    schedules: u64,
    steps: u64,
    acked_batches: u64,
    rejected_batches: u64,
    escalations: u64,
    resumes: u64,
    faults_fired: u64,
    recoveries_with_tail: u64,
}

fn fold(op: &StoreOp<i64, i64>, oracle: &mut BTreeMap<i64, i64>) {
    match *op {
        StoreOp::Insert { key, value } => {
            oracle.entry(key).or_insert(value);
        }
        StoreOp::InsertOrReplace { key, value } => {
            oracle.insert(key, value);
        }
        StoreOp::Remove { key } | StoreOp::RemoveEntry { key } => {
            oracle.remove(&key);
        }
        StoreOp::Patch { key, patch } => match patch(oracle.get(&key).copied()) {
            Some(v) => {
                oracle.insert(key, v);
            }
            None => {
                oracle.remove(&key);
            }
        },
        StoreOp::CompareAndSet { key, expect, value } => {
            if oracle.get(&key).copied() == expect {
                oracle.insert(key, value);
            }
        }
        StoreOp::Get { .. } => {}
    }
}

fn random_batch(rng: &mut StdRng) -> Vec<StoreOp<i64, i64>> {
    let len = rng.gen_range(1..6);
    let mut used = HashSet::new();
    let mut ops = Vec::new();
    for _ in 0..len {
        let key = rng.gen_range(-40i64..40);
        if !used.insert(key) {
            continue;
        }
        let value = rng.gen_range(-1000i64..1000);
        ops.push(match rng.gen_range(0..3) {
            0 => StoreOp::Insert { key, value },
            1 => StoreOp::InsertOrReplace { key, value },
            _ => StoreOp::RemoveEntry { key },
        });
    }
    ops
}

fn run_schedule(seed: u64, steps: u64, totals: &mut ScheduleTotals) {
    let scratch = ScratchDir::new("chaos-schedule");
    let faulty = FaultyStorage::over_fs();
    let store: DurableStore<i64, i64> =
        DurableStore::open_with_storage(scratch.path(), chaos_config(), Arc::new(faulty.clone()))
            .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
    // The one batch whose escalation the caller saw fail: its frame may
    // have reached the disk intact, so recovery may include it.
    let mut tail: Option<Vec<StoreOp<i64, i64>>> = None;

    for _ in 0..steps {
        totals.steps += 1;
        match rng.gen_range(0..12u32) {
            0..=5 => {
                let batch = random_batch(&mut rng);
                let was_degraded = store.is_degraded();
                match store.apply_durable(batch.clone()) {
                    Ok(_) => {
                        totals.acked_batches += 1;
                        for op in &batch {
                            fold(op, &mut oracle);
                        }
                    }
                    Err(DurableError::Degraded(_)) => {
                        totals.rejected_batches += 1;
                        if !was_degraded {
                            totals.escalations += 1;
                            tail = Some(batch);
                        }
                    }
                    Err(other) => panic!("seed {seed}: unexpected write error {other:?}"),
                }
            }
            6 => {
                let _ = store.checkpoint();
            }
            7 | 8 => {
                let kind = TRANSIENT_KINDS[rng.gen_range(0..TRANSIENT_KINDS.len())];
                faulty.schedule(Fault::nth(
                    faulty.ops() + rng.gen_range(0u64..10),
                    FaultKind::Error(kind),
                ));
            }
            9 => faulty.schedule(Fault::nth(
                faulty.ops() + rng.gen_range(0u64..10),
                FaultKind::ShortWrite,
            )),
            10 => faulty.schedule(Fault::nth(
                faulty.ops() + rng.gen_range(0u64..10),
                FaultKind::Outage(io::ErrorKind::Other),
            )),
            _ => {
                faulty.heal();
                if let Ok(true) = store.try_resume() {
                    totals.resumes += 1;
                    tail = None;
                }
            }
        }
        // Memory must serve exactly the acknowledged prefix at all times.
        let live = RangeRead::collect_range(&store, RangeSpec::all());
        let want: Vec<(i64, i64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(live, want, "seed {seed}: memory diverged from the oracle");
    }
    totals.faults_fired += faulty.faults_fired();
    faulty.heal();
    store.shutdown();
    drop(store);

    let acked: Vec<(i64, i64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
    let with_tail: Vec<(i64, i64)> = {
        let mut o = oracle.clone();
        for op in tail.iter().flatten() {
            fold(op, &mut o);
        }
        o.iter().map(|(k, v)| (*k, *v)).collect()
    };

    let mut rounds = Vec::new();
    for round in 0..2 {
        let reopened: DurableStore<i64, i64> = DurableStore::open(scratch.path()).unwrap();
        let recovered = RangeRead::collect_range(&reopened, RangeSpec::all());
        assert!(
            recovered == acked || recovered == with_tail,
            "seed {seed} round {round}: recovery produced a state outside the allowed set"
        );
        reopened.store().check_invariants();
        reopened.shutdown();
        rounds.push(recovered);
    }
    assert_eq!(rounds[0], rounds[1], "seed {seed}: recovery not idempotent");
    if rounds[0] != acked {
        totals.recoveries_with_tail += 1;
    }
    totals.schedules += 1;
}

// ---------------------------------------------------------------------------

#[derive(Debug, Serialize)]
struct Report {
    smoke: bool,
    drizzle: Vec<DrizzlePoint>,
    cycles: CyclesOutcome,
    schedules: ScheduleTotals,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration = Duration::from_millis(if smoke { 100 } else { 400 });
    let seeds: u64 = if smoke { 10 } else { 64 };
    let steps: u64 = if smoke { 24 } else { 60 };

    let mut drizzle = Vec::new();
    for &period in &[0u64, 64, 16] {
        let point = run_drizzle(if smoke { 2 } else { 4 }, period, duration);
        println!(
            "drizzle: writers={} period={:<3} {:>9.0} commits/s  {:>5} retries  p99 {:>9} ns",
            point.writer_threads,
            point.fault_period,
            point.commits_per_sec,
            point.io_retries,
            point.commit_p99_ns,
        );
        drizzle.push(point);
    }

    let cycles = run_cycles(if smoke { 2 } else { 4 }, if smoke { 2 } else { 4 });
    println!(
        "cycles: {} outage/resume cycles, {} acked keys survived, {} degraded rejections",
        cycles.cycles, cycles.acked_writes, cycles.degraded_write_rejections,
    );

    let mut totals = ScheduleTotals::default();
    for seed in 0..seeds {
        run_schedule(seed, steps, &mut totals);
    }
    println!(
        "schedules: {} seeds x {} steps — {} acked / {} rejected batches, \
         {} escalations, {} resumes, {} faults fired, {} recoveries included the in-flight tail",
        totals.schedules,
        steps,
        totals.acked_batches,
        totals.rejected_batches,
        totals.escalations,
        totals.resumes,
        totals.faults_fired,
        totals.recoveries_with_tail,
    );
    assert!(
        totals.faults_fired > 0,
        "the schedules must really have injected faults"
    );

    let report = Report {
        smoke,
        drizzle,
        cycles,
        schedules: totals,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json");
}
