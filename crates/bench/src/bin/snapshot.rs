//! Global-timestamp-front benchmark (`BENCH_snapshot.json`).
//!
//! Measures what the single-snapshot guarantee costs (and buys) on
//! `ShardedStore`'s cross-shard reads: the same reader/writer workloads are
//! run with cross-shard counts answered the pre-PR-4 **stitched** way (one
//! linearizable query per shard, no global cut — not a single atomic
//! snapshot) and with the **snapshot-front** reads (acquire a settled
//! per-shard front, read every touched shard at it, retry if a shard
//! advanced), at 1/4/8 reader threads over an 8-shard store, with and
//! without background writers. Reader throughput plus the store's
//! front counters (acquires, retries) land in `BENCH_snapshot.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin snapshot            # full run
//! cargo run --release --bin snapshot -- --smoke # short CI run
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use wft_store::ShardedStore;

const SHARDS: usize = 8;
const WRITER_THREADS: usize = 2;

/// One measured configuration point.
#[derive(Debug, Serialize)]
struct Point {
    workload: String,
    read_mode: String,
    reader_threads: usize,
    reads_per_sec: f64,
    writes_per_sec: f64,
    snapshot_acquires: u64,
    snapshot_retries: u64,
    /// Median sampled reader-op latency (ns; one in 8 reads is timed).
    read_p50_ns: u64,
    /// 99th-percentile sampled reader-op latency (ns).
    read_p99_ns: u64,
    /// 99.9th-percentile sampled reader-op latency (ns).
    read_p999_ns: u64,
    /// The store's full `wft-obs` metrics **delta over the measurement
    /// window** (counters that moved during the window, end minus start),
    /// plus the reader latency histogram under `reader_latency_ns`.
    window: wft_obs::MetricsSnapshot,
}

/// The store's `wft-obs` metrics, collected through its `MetricsSource`
/// impl (the same registry surface `examples/metrics_tour.rs` exports).
fn metrics_of(store: &ShardedStore<i64>) -> wft_obs::MetricsSnapshot {
    let mut out = wft_obs::MetricsSnapshot::new();
    wft_obs::MetricsSource::collect_metrics(store, &mut out);
    out
}

/// Stitched vs snapshot-front ratio for one (workload, threads) pair.
#[derive(Debug, Serialize)]
struct Overhead {
    workload: String,
    reader_threads: usize,
    stitched_reads_per_sec: f64,
    snapshot_reads_per_sec: f64,
    /// `snapshot / stitched`: 1.0 means the linearizable front reads cost
    /// nothing over the torn stitched reads.
    relative_throughput: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    smoke: bool,
    key_range: i64,
    shards: usize,
    writer_threads: usize,
    duration_ms: u64,
    points: Vec<Point>,
    overheads: Vec<Overhead>,
}

#[derive(Clone, Copy, PartialEq)]
enum ReadMode {
    Stitched,
    SnapshotFront,
}

impl ReadMode {
    fn name(self) -> &'static str {
        match self {
            ReadMode::Stitched => "stitched",
            ReadMode::SnapshotFront => "snapshot-front",
        }
    }
}

#[derive(Clone, Copy)]
struct Workload {
    name: &'static str,
    /// Fraction of reader operations that are cross-shard counts; the rest
    /// are `collect_range` reads over a narrower (still cross-shard) span.
    count_fraction: f64,
    with_writers: bool,
}

fn measure(
    workload: Workload,
    mode: ReadMode,
    reader_threads: usize,
    key_range: i64,
    duration: Duration,
    seed: u64,
) -> Point {
    let store: Arc<ShardedStore<i64>> = Arc::new(ShardedStore::from_entries(
        (0..key_range).filter(|k| k % 2 == 0).map(|k| (k, ())),
        SHARDS,
    ));
    let writer_threads = if workload.with_writers {
        WRITER_THREADS
    } else {
        0
    };
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(reader_threads + writer_threads + 1));
    // Shared across readers: the cells are per-thread-sharded atomics, so
    // concurrent `observe` calls never contend on one cache line.
    let latency = Arc::new(wft_obs::LatencyHistogram::new());
    let before = metrics_of(&store);

    let readers: Vec<_> = (0..reader_threads)
        .map(|t| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let latency = Arc::clone(&latency);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64 + 1).wrapping_mul(0x9E37));
                barrier.wait();
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..16 {
                        // A span crossing most shard boundaries.
                        let lo = rng.gen_range(0..key_range / 4);
                        let hi = key_range - 1 - rng.gen_range(0..key_range / 4);
                        // One in 8 reads is timed (sampled by index, so the
                        // sample cannot be biased toward slow reads).
                        let timed_at = reads.is_multiple_of(8).then(Instant::now);
                        if rng.gen_bool(workload.count_fraction) {
                            match mode {
                                ReadMode::Stitched => {
                                    std::hint::black_box(store.stitched_count(lo, hi));
                                }
                                ReadMode::SnapshotFront => {
                                    std::hint::black_box(store.count(lo, hi));
                                }
                            }
                        } else {
                            let narrow_hi = lo + key_range / 8;
                            match mode {
                                ReadMode::Stitched => {
                                    std::hint::black_box(
                                        store.stitched_collect_range(lo, narrow_hi).len(),
                                    );
                                }
                                ReadMode::SnapshotFront => {
                                    std::hint::black_box(store.collect_range(lo, narrow_hi).len());
                                }
                            }
                        }
                        if let Some(at) = timed_at {
                            latency.observe(at.elapsed());
                        }
                        reads += 1;
                    }
                }
                reads
            })
        })
        .collect();

    let writers: Vec<_> = (0..writer_threads)
        .map(|t| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64 + 101).wrapping_mul(0xC0FFEE));
                barrier.wait();
                let mut writes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..16 {
                        let k = rng.gen_range(0..key_range);
                        if rng.gen_bool(0.5) {
                            store.insert(k, ());
                        } else {
                            store.remove(&k);
                        }
                        writes += 1;
                    }
                }
                writes
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let reads: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    let writes: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed().as_secs_f64();
    let stats = store.store_stats();
    let read_latency = latency.snapshot();
    let mut window = metrics_of(&store).delta_since(&before);
    window.push_histogram("reader_latency_ns", read_latency.clone());
    Point {
        workload: workload.name.to_string(),
        read_mode: mode.name().to_string(),
        reader_threads,
        reads_per_sec: reads as f64 / elapsed,
        writes_per_sec: writes as f64 / elapsed,
        snapshot_acquires: stats.snapshot_acquires,
        snapshot_retries: stats.snapshot_retries,
        read_p50_ns: read_latency.quantile(0.50),
        read_p99_ns: read_latency.quantile(0.99),
        read_p999_ns: read_latency.quantile(0.999),
        window,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let key_range: i64 = if smoke { 40_000 } else { 200_000 };
    let duration = Duration::from_millis(if smoke { 120 } else { 400 });
    let threads = [1usize, 4, 8];

    let workloads = [
        Workload {
            name: "count-quiescent",
            count_fraction: 1.0,
            with_writers: false,
        },
        Workload {
            name: "count-under-writers",
            count_fraction: 1.0,
            with_writers: true,
        },
        Workload {
            name: "range-mix-under-writers",
            count_fraction: 0.5,
            with_writers: true,
        },
    ];

    let mut points = Vec::new();
    let mut overheads = Vec::new();
    for workload in workloads {
        for &t in &threads {
            let stitched = measure(workload, ReadMode::Stitched, t, key_range, duration, 42);
            let snapshot = measure(
                workload,
                ReadMode::SnapshotFront,
                t,
                key_range,
                duration,
                42,
            );
            println!(
                "{:<24} t={}  stitched {:>10.0} reads/s   snapshot-front {:>10.0} reads/s   ratio {:>5.2}   (acquires {} / retries {})",
                workload.name,
                t,
                stitched.reads_per_sec,
                snapshot.reads_per_sec,
                snapshot.reads_per_sec / stitched.reads_per_sec,
                snapshot.snapshot_acquires,
                snapshot.snapshot_retries,
            );
            overheads.push(Overhead {
                workload: workload.name.to_string(),
                reader_threads: t,
                stitched_reads_per_sec: stitched.reads_per_sec,
                snapshot_reads_per_sec: snapshot.reads_per_sec,
                relative_throughput: snapshot.reads_per_sec / stitched.reads_per_sec,
            });
            points.push(stitched);
            points.push(snapshot);
        }
    }

    if smoke {
        // CI gate: every embedded metrics snapshot must survive the JSON
        // exporter round-trip (serialize → serde_json → deserialize → ==).
        for point in &points {
            let back = wft_obs::MetricsSnapshot::from_json(&point.window.to_json())
                .expect("window metrics parse back");
            assert_eq!(
                back, point.window,
                "MetricsSnapshot JSON round-trip must be lossless"
            );
        }
        println!(
            "smoke: metrics JSON round-trip ok ({} windows)",
            points.len()
        );
    }

    let report = Report {
        smoke,
        key_range,
        shards: SHARDS,
        writer_threads: WRITER_THREADS,
        duration_ms: duration.as_millis() as u64,
        points,
        overheads,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_snapshot.json", &json).expect("write BENCH_snapshot.json");
    println!("wrote BENCH_snapshot.json");
}
