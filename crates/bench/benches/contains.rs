//! Figure 7 (micro-benchmark form): per-operation `contains` latency on a
//! pre-filled tree, for every implementation.
//!
//! The paper's Figure 7 reports multi-threaded throughput of a read-heavy
//! workload (reproduced by `figures -- fig7`); this bench captures the
//! single-operation cost that drives it — in particular the overhead the
//! wait-free tree pays for routing reads through descriptor queues compared
//! with the snapshot read of the persistent tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

use wft_workload::{TreeImpl, WorkloadSpec};

const PREFILL_RANGE: i64 = 100_000;

fn bench_contains(c: &mut Criterion) {
    let spec = WorkloadSpec::contains_benchmark().scaled_down(PREFILL_RANGE);
    let prefill = spec.prefill_keys(42);
    let mut group = c.benchmark_group("fig7_contains");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    // `TreeImpl::ALL` plus the descriptor-forced read path of the wait-free
    // tree, so this bench shows the PR 3 fast-path delta directly.
    for imp in TreeImpl::ALL
        .into_iter()
        .chain([TreeImpl::WaitFreeDescReads])
    {
        let set = imp.build(&prefill, 1);
        group.bench_with_input(BenchmarkId::from_parameter(imp.name()), &set, |b, set| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                let key = rng.gen_range(1..=PREFILL_RANGE);
                std::hint::black_box(set.contains(key))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contains);
criterion_main!(benches);
