//! Experiment E7: mixed workloads with aggregate range queries.
//!
//! The motivating scenario of the paper's introduction — an index answering
//! "how many requests arrived in this time range?" while updates stream in —
//! corresponds to a mix of point updates and `count` queries. This bench
//! measures the per-operation latency of such mixes on the wait-free tree and
//! on the persistent baseline, at several range-query shares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use wft_workload::{TreeImpl, WorkloadSpec};

const PREFILL_RANGE: i64 = 100_000;

fn bench_range_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_range_mix");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for count_percent in [1.0f64, 5.0, 20.0] {
        let spec = WorkloadSpec::range_mix(count_percent, 0.01).scaled_down(PREFILL_RANGE);
        let prefill = spec.prefill_keys(21);
        for imp in [
            TreeImpl::WaitFree,
            TreeImpl::WaitFreeDescReads,
            TreeImpl::Persistent,
        ] {
            let set = imp.build(&prefill, 1);
            group.bench_with_input(
                BenchmarkId::new(imp.name(), format!("{count_percent}% counts")),
                &set,
                |b, set| {
                    let mut rng = StdRng::seed_from_u64(5);
                    b.iter(|| {
                        match spec.next_op(&mut rng) {
                            wft_workload::spec::Op::Contains(k) => {
                                std::hint::black_box(set.contains(k));
                            }
                            wft_workload::spec::Op::Insert(k) => {
                                std::hint::black_box(set.insert(k));
                            }
                            wft_workload::spec::Op::Remove(k) => {
                                std::hint::black_box(set.remove(k));
                            }
                            wft_workload::spec::Op::Count(lo, hi) => {
                                std::hint::black_box(set.count(lo, hi));
                            }
                            wft_workload::spec::Op::Collect(lo, hi) => {
                                std::hint::black_box(set.count_via_collect(lo, hi));
                            }
                            wft_workload::spec::Op::SnapshotCounts(a_min, a_max, b_min, b_max) => {
                                std::hint::black_box(
                                    set.snapshot_count_pair(a_min, a_max, b_min, b_max),
                                );
                            }
                            wft_workload::spec::Op::ChunkedScan(lo, hi, chunk) => {
                                std::hint::black_box(set.chunked_scan_count(lo, hi, chunk));
                            }
                            wft_workload::spec::Op::Patch(k) => {
                                std::hint::black_box(set.patch_toggle(k));
                            }
                            wft_workload::spec::Op::AtomicBatch(a, b) => {
                                std::hint::black_box(set.batch_move(a, b));
                            }
                        };
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_range_mix);
criterion_main!(benches);
