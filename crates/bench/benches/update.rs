//! Figures 8 and 9 (micro-benchmark form): per-operation update latency.
//!
//! * `fig8_insert_delete`: alternating insert/remove over a pre-filled key
//!   range, so roughly half the updates succeed — the paper's insert-delete
//!   workload.
//! * `fig9_successful_insert`: inserts of essentially-unique 64-bit keys, so
//!   every update succeeds and every implementation pays its full write
//!   path — where the persistent tree's whole-path copying is most visible.
//! * `replace_descriptor_vs_composed`: the atomic `insert_or_replace`
//!   (one `Replace` descriptor, one root-queue enqueue) against the old
//!   `remove_entry` + `insert` composition (two descriptors, two enqueues)
//!   at 1 / 4 / 8 threads over a shared pre-filled tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

use wft_core::WaitFreeTree;
use wft_workload::{TreeImpl, WorkloadSpec};

const PREFILL_RANGE: i64 = 100_000;

fn bench_insert_delete(c: &mut Criterion) {
    let spec = WorkloadSpec::insert_delete().scaled_down(PREFILL_RANGE);
    let prefill = spec.prefill_keys(42);
    let mut group = c.benchmark_group("fig8_insert_delete");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for imp in TreeImpl::ALL {
        let set = imp.build(&prefill, 1);
        group.bench_with_input(BenchmarkId::from_parameter(imp.name()), &set, |b, set| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| {
                let key = rng.gen_range(1..=PREFILL_RANGE);
                if rng.gen_bool(0.5) {
                    std::hint::black_box(set.insert(key))
                } else {
                    std::hint::black_box(set.remove(key))
                }
            });
        });
    }
    group.finish();
}

fn bench_successful_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_successful_insert");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let prefill: Vec<i64> = {
        let mut rng = StdRng::seed_from_u64(3);
        (0..50_000).map(|_| rng.gen::<i64>()).collect()
    };
    for imp in TreeImpl::ALL {
        let set = imp.build(&prefill, 1);
        group.bench_with_input(BenchmarkId::from_parameter(imp.name()), &set, |b, set| {
            let mut rng = StdRng::seed_from_u64(13);
            b.iter(|| {
                // Full-range keys: collisions are vanishingly rare, so each
                // insert succeeds and grows the tree.
                std::hint::black_box(set.insert(rng.gen::<i64>()))
            });
        });
    }
    group.finish();
}

/// One upsert strategy under comparison (atomic descriptor vs composition).
type Upsert = fn(&WaitFreeTree<i64, i64>, i64, i64);

/// Upserts per thread per measured iteration of the replace benchmark.
const REPLACE_OPS_PER_THREAD: usize = 256;
/// Pre-filled key range the upserts land in (always-hit overwrites).
const REPLACE_KEYS: i64 = 10_000;

/// Runs `REPLACE_OPS_PER_THREAD` upserts on each of `threads` workers (the
/// calling thread counts as one), each picking keys from its own seeded rng.
fn run_upserts(tree: &Arc<WaitFreeTree<i64, i64>>, threads: usize, seed: u64, upsert: Upsert) {
    std::thread::scope(|scope| {
        for t in 1..threads {
            let tree = Arc::clone(tree);
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64) << 32);
            scope.spawn(move || {
                for i in 0..REPLACE_OPS_PER_THREAD {
                    upsert(&tree, rng.gen_range(0..REPLACE_KEYS), i as i64);
                }
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..REPLACE_OPS_PER_THREAD {
            upsert(tree, rng.gen_range(0..REPLACE_KEYS), i as i64);
        }
    });
}

fn bench_replace_vs_composed(c: &mut Criterion) {
    let mut group = c.benchmark_group("replace_descriptor_vs_composed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let variants: [(&str, Upsert); 2] = [
        ("replace-descriptor", |tree, key, value| {
            tree.insert_or_replace(key, value);
        }),
        // The pre-redesign composition `StoreOp::InsertOrReplace` used: two
        // descriptors, two root-queue enqueues, and a visible absence window.
        ("remove-insert-composed", |tree, key, value| {
            tree.remove_entry(&key);
            tree.insert(key, value);
        }),
    ];
    for threads in [1usize, 4, 8] {
        for (name, upsert) in variants {
            let tree: Arc<WaitFreeTree<i64, i64>> = Arc::new(WaitFreeTree::from_entries(
                (0..REPLACE_KEYS).map(|k| (k, k)),
            ));
            let mut seed = 17u64;
            group.bench_with_input(
                BenchmarkId::new(name, format!("{threads}t")),
                &tree,
                |b, tree| {
                    b.iter(|| {
                        seed = seed.wrapping_add(1);
                        run_upserts(tree, threads, seed, upsert);
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_delete,
    bench_successful_insert,
    bench_replace_vs_composed
);
criterion_main!(benches);
