//! Figures 8 and 9 (micro-benchmark form): per-operation update latency.
//!
//! * `fig8_insert_delete`: alternating insert/remove over a pre-filled key
//!   range, so roughly half the updates succeed — the paper's insert-delete
//!   workload.
//! * `fig9_successful_insert`: inserts of essentially-unique 64-bit keys, so
//!   every update succeeds and every implementation pays its full write
//!   path — where the persistent tree's whole-path copying is most visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

use wft_workload::{TreeImpl, WorkloadSpec};

const PREFILL_RANGE: i64 = 100_000;

fn bench_insert_delete(c: &mut Criterion) {
    let spec = WorkloadSpec::insert_delete().scaled_down(PREFILL_RANGE);
    let prefill = spec.prefill_keys(42);
    let mut group = c.benchmark_group("fig8_insert_delete");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for imp in TreeImpl::ALL {
        let set = imp.build(&prefill, 1);
        group.bench_with_input(BenchmarkId::from_parameter(imp.name()), &set, |b, set| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| {
                let key = rng.gen_range(1..=PREFILL_RANGE);
                if rng.gen_bool(0.5) {
                    std::hint::black_box(set.insert(key))
                } else {
                    std::hint::black_box(set.remove(key))
                }
            });
        });
    }
    group.finish();
}

fn bench_successful_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_successful_insert");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let prefill: Vec<i64> = {
        let mut rng = StdRng::seed_from_u64(3);
        (0..50_000).map(|_| rng.gen::<i64>()).collect()
    };
    for imp in TreeImpl::ALL {
        let set = imp.build(&prefill, 1);
        group.bench_with_input(BenchmarkId::from_parameter(imp.name()), &set, |b, set| {
            let mut rng = StdRng::seed_from_u64(13);
            b.iter(|| {
                // Full-range keys: collisions are vanishingly rare, so each
                // insert succeeds and grows the tree.
                std::hint::black_box(set.insert(rng.gen::<i64>()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert_delete, bench_successful_insert);
criterion_main!(benches);
