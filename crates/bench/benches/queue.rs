//! Experiment E6: the descriptor-queue substrate.
//!
//! Measures the building blocks of §II-D/§II-F in isolation:
//!
//! * `enqueue_assign` on the lock-free root queue vs `enqueue` on the
//!   wait-free (announce-array) root queue — the `O(P log P)` helping cost of
//!   Lemma 1 shows up as a constant-factor overhead per enqueue;
//! * `push_if` + `pop_if` round-trips on a per-node queue;
//! * presence-index resolution, the per-update cost added by the decision
//!   substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use std::time::Duration;

use wft_queue::{PresenceIndex, Timestamp, TsQueue, UpdateKind, WaitFreeRootQueue};

fn bench_root_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_root_queue_enqueue");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("lock_free_enqueue_pop", |b| {
        let queue: TsQueue<u64> = TsQueue::new(Timestamp::ZERO);
        b.iter(|| {
            let guard = crossbeam_epoch::pin();
            let ts = queue.enqueue_assign(1, &guard);
            std::hint::black_box(queue.pop_if(ts, &guard));
        });
    });

    group.bench_function("wait_free_enqueue_pop", |b| {
        let queue: WaitFreeRootQueue<u64> = WaitFreeRootQueue::new(8);
        let slot = queue.register().expect("slot available");
        b.iter(|| {
            let guard = crossbeam_epoch::pin();
            let ts = queue.enqueue(&slot, 1, &guard);
            std::hint::black_box(queue.pop_if(ts, &guard));
        });
    });
    group.finish();
}

fn bench_node_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_node_queue_push_if_pop_if");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("push_if_pop_if_roundtrip", |b| {
        let queue: TsQueue<u64> = TsQueue::new(Timestamp::ZERO);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            let guard = crossbeam_epoch::pin();
            queue.push_if(Timestamp(ts), ts, &guard);
            std::hint::black_box(queue.pop_if(Timestamp(ts), &guard));
        });
    });
    group.finish();
}

fn bench_presence_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_presence_index_resolution");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("alternating_insert_remove", |b| {
        let index: PresenceIndex<i64, ()> = PresenceIndex::with_buckets(1 << 14);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            let key = (ts % 10_000) as i64;
            let kind = if ts.is_multiple_of(2) {
                UpdateKind::Insert(())
            } else {
                UpdateKind::Remove
            };
            let cell = OnceLock::new();
            let guard = crossbeam_epoch::pin();
            std::hint::black_box(index.resolve(&key, Timestamp(ts), &kind, &cell, &guard))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_root_queues,
    bench_node_queue,
    bench_presence_index
);
criterion_main!(benches);
