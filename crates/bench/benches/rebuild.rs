//! Experiment E5: rebuild-factor ablation (§II-E).
//!
//! The constant `K` trades rebuild frequency (and therefore balance quality)
//! against rebuild cost: a small `K` rebuilds aggressively and keeps the tree
//! near-perfect; a large `K` rebuilds rarely but lets search paths grow. The
//! bench measures per-update latency under sorted insertions — the worst
//! case for an unbalanced external BST — for several values of `K`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use wft_core::{TreeConfig, WaitFreeTree};

fn bench_rebuild_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_rebuild_factor");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for factor in [0.5f64, 1.0, 2.0, 8.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(factor),
            &factor,
            |b, &factor| {
                // iter_batched: each batch gets a fresh tree so the sorted
                // insertion sequence (the adversarial case) starts over.
                b.iter_batched(
                    || {
                        WaitFreeTree::<i64>::with_config(TreeConfig {
                            rebuild_factor: factor,
                            ..TreeConfig::default()
                        })
                    },
                    |tree| {
                        for k in 0..2_000i64 {
                            std::hint::black_box(tree.insert(k, ()));
                        }
                        tree
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_rebuild_overhead_report(c: &mut Criterion) {
    // Not a timing bench per se: measures the amortized cost of an insert on
    // a tree that has already absorbed many rebuilds, confirming the O(1)
    // amortized rebuilding claim.
    let mut group = c.benchmark_group("e5_amortized_insert_after_rebuilds");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let tree = WaitFreeTree::<i64>::new();
    for k in 0..100_000i64 {
        tree.insert(k, ());
    }
    let mut next = 100_000i64;
    group.bench_function("insert_after_100k_sorted", |b| {
        b.iter(|| {
            next += 1;
            std::hint::black_box(tree.insert(next, ()))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rebuild_factor, bench_rebuild_overhead_report);
criterion_main!(benches);
