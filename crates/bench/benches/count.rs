//! Experiment E4: the headline asymptotic claim.
//!
//! `count(min, max)` implemented as an aggregate range query must scale with
//! the tree height, while the prior-work implementation
//! `collect(min, max).len()` scales with the number of keys in the range.
//! The two bench groups sweep the range width on the same pre-filled tree;
//! the aggregate query's latency should stay essentially flat while the
//! collect-based one grows linearly — the gap is the paper's motivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

use std::sync::Arc;
use wft_core::WaitFreeTree;
use wft_seq::SeqRangeTree;

const KEYS: i64 = 200_000;

fn prefilled_concurrent() -> Arc<WaitFreeTree<i64>> {
    Arc::new(WaitFreeTree::from_entries((0..KEYS).map(|k| (k, ()))))
}

fn prefilled_sequential() -> SeqRangeTree<i64> {
    SeqRangeTree::from_entries((0..KEYS).map(|k| (k, ())))
}

fn bench_count_vs_collect(c: &mut Criterion) {
    let tree = prefilled_concurrent();
    let mut group = c.benchmark_group("e4_count_vs_collect");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for width in [100i64, 1_000, 10_000, 100_000] {
        group.throughput(Throughput::Elements(width as u64));
        group.bench_with_input(
            BenchmarkId::new("count_aggregate", width),
            &width,
            |b, &width| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| {
                    let lo = rng.gen_range(0..KEYS - width);
                    std::hint::black_box(tree.count(lo, lo + width))
                });
            },
        );
        // The collect-based count is capped at 10^4 keys: it already takes
        // hundreds of milliseconds per query there (≈30 µs per reported key
        // through the descriptor framework plus the epoch-reclamation
        // pressure of one retired queue node per visited tree node), so the
        // widest setting would dominate the whole benchmark suite without
        // adding information — the asymptotic gap is unambiguous well before
        // that point. See EXPERIMENTS.md §E4 / "Known overheads".
        if width <= 10_000 {
            group.bench_with_input(
                BenchmarkId::new("collect_len", width),
                &width,
                |b, &width| {
                    let mut rng = StdRng::seed_from_u64(1);
                    b.iter(|| {
                        let lo = rng.gen_range(0..KEYS - width);
                        std::hint::black_box(tree.collect_range(lo, lo + width).len())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_sequential_reference(c: &mut Criterion) {
    // The sequential augmented tree gives the no-synchronization lower bound
    // for the same aggregate query.
    let tree = prefilled_sequential();
    let mut group = c.benchmark_group("e4_sequential_count");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for width in [100i64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let lo = rng.gen_range(0..KEYS - width);
                std::hint::black_box(tree.count(lo, lo + width))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_count_vs_collect, bench_sequential_reference);
criterion_main!(benches);
