//! Experiment E8: the trie instantiation of the helping scheme.
//!
//! The paper's conclusion proposes applying the technique to other tree
//! shapes (tries, quad trees). These benches compare the wait-free binary
//! trie against the wait-free BST on the same single-threaded workloads:
//!
//! * aggregate `count` versus range width (both must stay flat; the trie's
//!   depth is bounded by the key width, the BST's by `log N`),
//! * scalar update cost on dense versus sparse key spaces (dense keys force
//!   the trie's deepest divergence chains),
//! * the linear-time baseline (`collect().len()` on the lock-free BST) as
//!   the reference the aggregate queries beat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

use wft_core::WaitFreeTree;
use wft_lockfree::LockFreeBst;
use wft_trie::WaitFreeTrie;

const KEYS: i64 = 100_000;

fn bench_count_by_width(c: &mut Criterion) {
    let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..KEYS).map(|k| (k, ())));
    let trie: WaitFreeTrie<i64> = WaitFreeTrie::from_entries((0..KEYS).map(|k| (k, ())));
    let linear: LockFreeBst<i64> = LockFreeBst::from_entries((0..KEYS).map(|k| (k, ())));
    let mut group = c.benchmark_group("e8_trie_count_vs_bst");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for width in [100i64, 1_000, 10_000, 50_000] {
        group.throughput(Throughput::Elements(width as u64));
        group.bench_with_input(BenchmarkId::new("bst_count", width), &width, |b, &width| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let lo = rng.gen_range(0..KEYS - width);
                std::hint::black_box(tree.count(lo, lo + width))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("trie_count", width),
            &width,
            |b, &width| {
                let mut rng = StdRng::seed_from_u64(3);
                b.iter(|| {
                    let lo = rng.gen_range(0..KEYS - width);
                    std::hint::black_box(trie.count(lo, lo + width))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lockfree_collect_len", width),
            &width,
            |b, &width| {
                let mut rng = StdRng::seed_from_u64(3);
                b.iter(|| {
                    let lo = rng.gen_range(0..KEYS - width);
                    std::hint::black_box(linear.count(lo, lo + width))
                });
            },
        );
    }
    group.finish();
}

fn bench_updates_dense_vs_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_trie_update_cost");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // Dense keys: adjacent integers share long index prefixes, so the trie
    // pays its worst-case divergence chains; the BST pays rebuilds instead.
    group.bench_function("trie_insert_remove_dense", |b| {
        let trie: WaitFreeTrie<i64> = WaitFreeTrie::from_entries((0..10_000).map(|k| (k, ())));
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let k = rng.gen_range(0..20_000);
            if rng.gen_bool(0.5) {
                std::hint::black_box(trie.insert(k, ()));
            } else {
                std::hint::black_box(trie.remove(&k));
            }
        });
    });
    group.bench_function("bst_insert_remove_dense", |b| {
        let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..10_000).map(|k| (k, ())));
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let k = rng.gen_range(0..20_000);
            if rng.gen_bool(0.5) {
                std::hint::black_box(tree.insert(k, ()));
            } else {
                std::hint::black_box(tree.remove(&k));
            }
        });
    });
    // Sparse keys: uniformly random 64-bit keys diverge near the root, the
    // trie's favourable regime.
    group.bench_function("trie_insert_remove_sparse", |b| {
        let trie: WaitFreeTrie<i64> = WaitFreeTrie::new();
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let k: i64 = rng.gen();
            if rng.gen_bool(0.5) {
                std::hint::black_box(trie.insert(k, ()));
            } else {
                std::hint::black_box(trie.remove(&k));
            }
        });
    });
    group.bench_function("bst_insert_remove_sparse", |b| {
        let tree: WaitFreeTree<i64> = WaitFreeTree::new();
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let k: i64 = rng.gen();
            if rng.gen_bool(0.5) {
                std::hint::black_box(tree.insert(k, ()));
            } else {
                std::hint::black_box(tree.remove(&k));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_count_by_width, bench_updates_dense_vs_sparse);
criterion_main!(benches);
