//! Sharded vs. unsharded throughput.
//!
//! The single wait-free tree serializes every update through one root
//! queue; the sharded store gives each keyspace slice its own root. Three
//! comparisons quantify what that buys (and costs):
//!
//! * `batch_apply` — two-phase batched writes through `apply_batch`,
//!   sweeping the shard count (shards = 1 is the unsharded baseline
//!   wrapped in the same API, so the delta is pure sharding);
//! * `multithreaded_mix` — the workload harness's insert-delete mix driven
//!   through the `ConcurrentSet` adapter at a fixed thread count, sharded
//!   store vs. single tree;
//! * `cross_shard_count` — aggregate range queries that straddle shard
//!   boundaries: the price of stitching S augmented roots together.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wft_store::{ShardedStore, StoreOp};
use wft_workload::{timed_run, TreeImpl, WorkloadSpec};

const KEYS: i64 = 200_000;
const BATCH: usize = 1_024;

fn prefilled(shards: usize) -> ShardedStore<i64> {
    ShardedStore::from_entries((0..KEYS).map(|k| (k, ())), shards)
}

fn mixed_batch(rng: &mut StdRng) -> Vec<StoreOp<i64>> {
    // Distinct keys per batch (the validator rejects duplicates): a random
    // arithmetic stride over the keyspace; KEYS is not a multiple of any
    // odd stride below, so BATCH < KEYS/stride keys never wrap into a
    // collision.
    let start = rng.gen_range(0..KEYS);
    let stride = rng.gen_range(1i64..=61) | 1;
    (0..BATCH as i64)
        .map(|i| {
            let key = (start + i * stride).rem_euclid(KEYS);
            if i % 2 == 0 {
                StoreOp::Insert { key, value: () }
            } else {
                StoreOp::Remove { key }
            }
        })
        .collect()
}

fn bench_batch_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_batch_apply");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for shards in [1usize, 2, 4, 8] {
        let store = prefilled(shards);
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(BenchmarkId::new("apply_batch", shards), &shards, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let batch = mixed_batch(&mut rng);
                std::hint::black_box(store.apply_batch(batch).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_multithreaded_mix(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let spec = WorkloadSpec::insert_delete().scaled_down(KEYS);
    let mut group = c.benchmark_group("sharded_multithreaded_mix");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for imp in [TreeImpl::WaitFree, TreeImpl::Sharded] {
        group.bench_with_input(BenchmarkId::new(imp.name(), threads), &imp, |b, &imp| {
            let prefill = spec.prefill_keys(3);
            let set = imp.build(&prefill, threads);
            b.iter(|| {
                let result = timed_run(
                    Arc::clone(&set),
                    &spec,
                    threads,
                    Duration::from_millis(50),
                    7,
                );
                std::hint::black_box(result.total_ops)
            });
        });
    }
    group.finish();
}

fn bench_cross_shard_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_shard_count");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for shards in [1usize, 8] {
        let store = prefilled(shards);
        for width in [1_000i64, 100_000] {
            group.bench_with_input(
                BenchmarkId::new(format!("shards_{shards}"), width),
                &width,
                |b, &width| {
                    let mut rng = StdRng::seed_from_u64(2);
                    b.iter(|| {
                        let lo = rng.gen_range(0..KEYS - width);
                        std::hint::black_box(store.count(lo, lo + width))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_apply,
    bench_multithreaded_mix,
    bench_cross_shard_count
);
criterion_main!(benches);
