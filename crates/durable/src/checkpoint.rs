//! Checkpoint images: whole-store snapshots that bound WAL replay.
//!
//! A checkpoint file `ckpt-<cut:020>.ckpt` is the store's full contents as
//! observed by a snapshot-consistent scan cursor, stamped with the WAL
//! *cut* — the highest sequence number known to be applied before the scan
//! opened. Recovery loads the newest valid image and replays only WAL
//! records with `seq > cut` (see `crate::store` for why replaying a few
//! already-included records is harmless).
//!
//! # Format
//!
//! ```text
//! [magic: 8 bytes "WFTCKPT1"] [body] [crc: u32 LE]
//! body = [cut: u64 LE] [count: u64 LE] ([key] [value])...
//! ```
//!
//! `crc` is CRC-32 of the body. Images are written to a `.tmp` name,
//! fsynced, renamed into place, and the directory fsynced — the rename is
//! the commit point, so a crash mid-write leaves at most a stray temp file
//! and never a half-visible checkpoint. All I/O goes through the
//! [`crate::storage::Storage`] seam so the fault harness can crash this
//! path at every step (tmp write, tmp fsync, rename, dir fsync).

use std::io;
use std::path::{Path, PathBuf};

use wft_seq::{Key, Value};

use crate::codec::{crc32, WalCodec};
use crate::storage::Storage;

const MAGIC: &[u8; 8] = b"WFTCKPT1";

fn checkpoint_name(cut: u64) -> String {
    format!("ckpt-{cut:020}.ckpt")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// Checkpoint files in the directory, sorted by cut (ascending). Temp
/// files fail the `.ckpt` suffix match and are invisible here — a crash
/// between tmp-write and rename leaves no trace recovery can see.
fn list_checkpoints(storage: &dyn Storage, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for name in storage.list_dir(dir)? {
        if let Some(cut) = parse_checkpoint_name(&name) {
            found.push((cut, dir.join(name)));
        }
    }
    found.sort_unstable_by_key(|(cut, _)| *cut);
    Ok(found)
}

/// Atomically writes the checkpoint image for `cut`, then deletes every
/// older checkpoint file (the newest image subsumes them). Returns the
/// image's size in bytes.
pub(crate) fn write_checkpoint<K, V>(
    storage: &dyn Storage,
    dir: &Path,
    cut: u64,
    entries: &[(K, V)],
) -> io::Result<u64>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    let mut body = Vec::with_capacity(16 + entries.len() * 16);
    cut.encode_wal(&mut body);
    (entries.len() as u64).encode_wal(&mut body);
    for (k, v) in entries {
        k.encode_wal(&mut body);
        v.encode_wal(&mut body);
    }

    let tmp = dir.join(format!("{}.tmp", checkpoint_name(cut)));
    let path = dir.join(checkpoint_name(cut));
    {
        let mut file = storage.create_truncate(&tmp)?;
        file.append(MAGIC)?;
        file.append(&body)?;
        file.append(&crc32(&body).to_le_bytes())?;
        file.sync()?;
    }
    storage.rename(&tmp, &path)?;
    storage.sync_dir(dir)?;

    for (old_cut, old_path) in list_checkpoints(storage, dir)? {
        if old_cut < cut {
            storage.remove_file(&old_path)?;
        }
    }
    Ok((MAGIC.len() + body.len() + 4) as u64)
}

/// A loaded checkpoint image: the WAL cut it covers plus its entries.
type CheckpointImage<K, V> = (u64, Vec<(K, V)>);

/// Parses and validates one checkpoint image. `None` when the magic, CRC,
/// or entry count does not check out.
fn parse_checkpoint<K, V>(bytes: &[u8]) -> Option<CheckpointImage<K, V>>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    let body = bytes.get(MAGIC.len()..bytes.len().checked_sub(4)?)?;
    if &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().ok()?);
    if crc32(body) != stored_crc {
        return None;
    }
    let mut pos = 0;
    let cut = u64::decode_wal(body, &mut pos)?;
    let count = u64::decode_wal(body, &mut pos)? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let k = K::decode_wal(body, &mut pos)?;
        let v = V::decode_wal(body, &mut pos)?;
        entries.push((k, v));
    }
    if pos != body.len() {
        return None;
    }
    Some((cut, entries))
}

/// Loads the newest checkpoint that validates, walking older images when a
/// newer one is corrupt (a crash can tear at most the not-yet-renamed temp
/// file, but defence in depth costs one loop). `None` when no valid image
/// exists — recovery then replays the WAL from an empty store.
pub(crate) fn load_newest_checkpoint<K, V>(
    storage: &dyn Storage,
    dir: &Path,
) -> io::Result<Option<CheckpointImage<K, V>>>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    for (_, path) in list_checkpoints(storage, dir)?.into_iter().rev() {
        let bytes = storage.read(&path)?;
        if let Some(parsed) = parse_checkpoint(&bytes) {
            return Ok(Some(parsed));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use crate::storage::{Fault, FaultKind, FaultOp, FaultyStorage, FsStorage};
    use std::fs;

    #[test]
    fn checkpoint_round_trips_and_supersedes() {
        let dir = ScratchDir::new("ckpt-roundtrip");
        let entries: Vec<(i64, i64)> = (0..100).map(|k| (k, k * 2)).collect();
        write_checkpoint(&FsStorage, dir.path(), 7, &entries).unwrap();
        let (cut, loaded) = load_newest_checkpoint::<i64, i64>(&FsStorage, dir.path())
            .unwrap()
            .unwrap();
        assert_eq!(cut, 7);
        assert_eq!(loaded, entries);

        // A newer checkpoint replaces the old file entirely.
        write_checkpoint(&FsStorage, dir.path(), 20, &entries[..10]).unwrap();
        assert_eq!(list_checkpoints(&FsStorage, dir.path()).unwrap().len(), 1);
        let (cut, loaded) = load_newest_checkpoint::<i64, i64>(&FsStorage, dir.path())
            .unwrap()
            .unwrap();
        assert_eq!(cut, 20);
        assert_eq!(loaded.len(), 10);
    }

    #[test]
    fn corrupt_image_is_rejected() {
        let dir = ScratchDir::new("ckpt-corrupt");
        write_checkpoint::<i64, i64>(&FsStorage, dir.path(), 3, &[(1, 10), (2, 20)]).unwrap();
        let path = dir.path().join(checkpoint_name(3));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(load_newest_checkpoint::<i64, i64>(&FsStorage, dir.path())
            .unwrap()
            .is_none());
    }

    #[test]
    fn empty_store_checkpoints_fine() {
        let dir = ScratchDir::new("ckpt-empty");
        write_checkpoint::<i64, ()>(&FsStorage, dir.path(), 0, &[]).unwrap();
        let (cut, entries) = load_newest_checkpoint::<i64, ()>(&FsStorage, dir.path())
            .unwrap()
            .unwrap();
        assert_eq!(cut, 0);
        assert!(entries.is_empty());
    }

    #[test]
    fn crash_before_rename_leaves_old_image_intact() {
        let dir = ScratchDir::new("ckpt-crash-rename");
        write_checkpoint::<i64, i64>(&FsStorage, dir.path(), 5, &[(1, 1)]).unwrap();

        // The rename fails: the new image never becomes visible, the tmp
        // file is invisible to recovery, and the old image still loads.
        let faulty = FaultyStorage::over_fs();
        faulty.schedule(Fault::nth_of(
            FaultOp::Rename,
            0,
            FaultKind::Error(io::ErrorKind::Other),
        ));
        let err = write_checkpoint::<i64, i64>(&faulty, dir.path(), 9, &[(2, 2)]);
        assert!(err.is_err());

        let (cut, entries) = load_newest_checkpoint::<i64, i64>(&FsStorage, dir.path())
            .unwrap()
            .unwrap();
        assert_eq!(cut, 5);
        assert_eq!(entries, vec![(1, 1)]);
        // The stray tmp file really is on disk yet ignored by listing.
        assert!(fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".tmp")));
    }

    #[test]
    fn failed_dir_sync_surfaces_but_image_already_committed() {
        let dir = ScratchDir::new("ckpt-dirsync");
        let faulty = FaultyStorage::over_fs();
        faulty.schedule(Fault::nth_of(
            FaultOp::DirSync,
            0,
            FaultKind::Error(io::ErrorKind::Other),
        ));
        // The write reports failure (caller must not truncate the WAL)...
        assert!(write_checkpoint::<i64, i64>(&faulty, dir.path(), 4, &[(3, 3)]).is_err());
        // ...but the renamed image, if the directory entry survived, is a
        // valid one — recovery may use it or fall back to pure WAL replay;
        // either is consistent because the WAL was not truncated.
        if let Some((cut, entries)) =
            load_newest_checkpoint::<i64, i64>(&FsStorage, dir.path()).unwrap()
        {
            assert_eq!(cut, 4);
            assert_eq!(entries, vec![(3, 3)]);
        }
    }
}
