//! [`DurableStore`]: the sharded store wrapped in a write-ahead log,
//! online checkpoints, and crash recovery.
//!
//! # Write path
//!
//! Every mutation — point ops and batches alike — becomes a [`StoreOp`]
//! batch submitted to the group-commit journal (see [`crate::journal`]).
//! The caller gets its typed outcomes back only after the batch is fsynced
//! *and* applied, so the in-memory store is always exactly a replay of the
//! WAL's committed prefix and no reader ever observes state a crash could
//! roll back. Reads go straight to the inner [`ShardedStore`] with zero
//! durability overhead: point gets, stitched range reads, snapshot reads,
//! and streaming scan cursors are all untouched.
//!
//! Logical operations ([`StoreOp::Patch`], [`StoreOp::CompareAndSet`],
//! [`StoreOp::Get`]) never reach the disk: the journal's log thread
//! resolves them into the four *physical* variants before encoding
//! (physical logging — see `crate::journal`'s resolution step), so the
//! WAL format is unchanged and the replay arguments below keep holding
//! verbatim.
//!
//! A transient I/O error on the flush path is retried with backoff; a
//! persistent one degrades the store to read-only instead of killing it —
//! see the [`crate::journal`] docs for the full failure policy and
//! [`DurableStore::try_resume`] for the way back.
//!
//! # Checkpoints are scans
//!
//! [`DurableStore::checkpoint`] never pauses writers. It samples the
//! journal's applied watermark as the *cut*, then drains a plain
//! [`RangeScan`] cursor until a drain completes with
//! [`ScanConsistency::Snapshot`] — the same first-class read API every
//! other consumer uses. If sustained write pressure starves the online
//! attempts (lock-free, not wait-free — on few cores every reschedule
//! lets an apply expire the cut), the drain *gates the journal's apply
//! stage* for exactly one pass: the inner store is mutated only by that
//! stage, so the gated drain is quiescent and completes `Snapshot`
//! immediately, while WAL appends and fsyncs keep running — durability is
//! never paused, only application (and thus acknowledgement) defers
//! briefly, and the backlog lands as one large commit group after. The
//! image is therefore some consistent store state at least as new as the
//! cut, which is exactly what replay needs:
//!
//! - Every batch with `seq <= cut` is fully inside the image.
//! - The image may additionally contain batches (even *partial* batches —
//!   a snapshot can land between two shard applications of one batch)
//!   with `seq > cut`. Recovery replays all records with `seq > cut`, so
//!   those ops are re-applied onto a state that already reflects them.
//!   Per key, a batch suffix re-applied in order is a no-op: the
//!   composition of a key's ops is either a constant function
//!   ([`StoreOp::InsertOrReplace`] / removes, possibly followed by
//!   inserts) or `x -> x.or(v)` (pure inserts), and both satisfy
//!   `f(f(x)) = f(x)`. Outcomes are *not* re-derivable this way, but
//!   recovery discards outcomes — they were already acknowledged to the
//!   original callers.
//!
//! After the image is durable (write-to-temp, fsync, rename, fsync dir),
//! the WAL rotates and every segment fully covered by the cut is deleted.
//!
//! Checkpoints can also fire automatically: configure a
//! [`CheckpointPolicy`] and either poll [`DurableStore::maybe_checkpoint`]
//! yourself or spawn the built-in poller with
//! [`DurableStore::spawn_auto_checkpointer`]. Policy-triggered runs are
//! distinguishable from explicit calls by [`CheckpointReport::trigger`]
//! and by the trigger bits in the `CheckpointBegin` trace arg.
//!
//! # Recovery
//!
//! Opening a directory loads the newest valid checkpoint into
//! [`ShardedStore::from_entries_with_config`], replays the WAL suffix
//! (`seq > cut`) in order — tolerating a torn tail by stopping at the
//! first bad frame, and refusing to replay across a sequence gap — and
//! resumes logging in a **fresh** segment, so recovery never appends after
//! torn bytes and is idempotent if interrupted.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wft_api::{
    BatchApply, BatchError, OpOutcome, PointMap, RangeKey, RangeRead, RangeScan, RangeSpec,
    ScanConsistency, ScanCursor, SnapshotRead, SnapshotToken, StoreOp, TimestampFront,
    UpdateOutcome,
};
use wft_obs::TraceKind;
use wft_seq::{Augmentation, Key, Size, Value};
use wft_store::{ShardedStore, StoreConfig, StoreScanCursor};

use crate::checkpoint::{load_newest_checkpoint, write_checkpoint};
use crate::codec::WalCodec;
use crate::journal::{Escalation, HaltMode, Journal, JournalState, RetryPolicy};
use crate::stats::{DurableInstruments, DurableStats};
use crate::storage::{FsStorage, Storage};
use crate::wal::{read_wal, WalWriter};
use crate::DurableError;

/// Chunked snapshot-drain attempts before the checkpoint falls back to a
/// single whole-range chunk (one validation window instead of many).
const CHECKPOINT_DRAIN_ATTEMPTS: u32 = 16;

/// When to auto-trigger a checkpoint (see
/// [`DurableStore::maybe_checkpoint`]). Thresholds compare against
/// *approximate* live-WAL counters: bytes appended since the last
/// checkpoint plus what recovery found on disk, and the count of
/// not-yet-truncated segments. `None` disables that axis.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointPolicy {
    /// Checkpoint once the live WAL exceeds this many bytes.
    pub max_wal_bytes: Option<u64>,
    /// Checkpoint once the live WAL spans more than this many segments.
    pub max_wal_segments: Option<u64>,
}

impl CheckpointPolicy {
    /// `true` when neither axis is configured (the policy can never
    /// fire).
    pub fn is_disabled(&self) -> bool {
        self.max_wal_bytes.is_none() && self.max_wal_segments.is_none()
    }
}

/// What caused a checkpoint to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointTrigger {
    /// An explicit [`DurableStore::checkpoint`] call.
    Explicit,
    /// The [`CheckpointPolicy::max_wal_bytes`] threshold.
    WalBytes,
    /// The [`CheckpointPolicy::max_wal_segments`] threshold.
    WalSegments,
}

impl CheckpointTrigger {
    /// The 2-bit code packed into the `CheckpointBegin` trace arg's high
    /// bits: `arg = (code << 14) | (cut & 0x3FFF)`.
    pub fn code(self) -> u16 {
        match self {
            CheckpointTrigger::Explicit => 0,
            CheckpointTrigger::WalBytes => 1,
            CheckpointTrigger::WalSegments => 2,
        }
    }
}

/// Configuration for a [`DurableStore`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Shards for the inner [`ShardedStore`].
    pub shards: usize,
    /// Configuration forwarded to the inner store.
    pub store: StoreConfig,
    /// Rotate WAL segments once they exceed this many bytes.
    pub segment_bytes: u64,
    /// Chunk size for the checkpoint's snapshot drain.
    pub checkpoint_chunk: usize,
    /// Whether commit groups fsync (`true` for real durability; `false`
    /// trades the crash guarantee for throughput, useful in benches to
    /// isolate the logging cost from the disk cost).
    pub fsync: bool,
    /// Retry budget for transient I/O errors on the flush path.
    pub retry: RetryPolicy,
    /// What a persistent flush failure escalates into (default:
    /// [`Escalation::Degrade`] — read-only mode, resumable via
    /// [`DurableStore::try_resume`]).
    pub on_persistent: Escalation,
    /// Background checkpoint thresholds; `None` means checkpoints run
    /// only when explicitly called.
    pub auto_checkpoint: Option<CheckpointPolicy>,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            shards: 4,
            store: StoreConfig::default(),
            segment_bytes: 8 * 1024 * 1024,
            checkpoint_chunk: 1024,
            fsync: true,
            retry: RetryPolicy::default(),
            on_persistent: Escalation::default(),
            auto_checkpoint: None,
        }
    }
}

/// What recovery found when the store opened.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Cut of the checkpoint the store was seeded from (0 = none).
    pub checkpoint_cut: u64,
    /// Entries loaded from that checkpoint.
    pub checkpoint_entries: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// Operations inside those records.
    pub replayed_ops: u64,
    /// Highest sequence number the recovered state reflects; logging
    /// resumes at `recovered_through + 1`.
    pub recovered_through: u64,
    /// `true` when the log ended in a torn/corrupt frame or a sequence
    /// gap and an unacknowledged suffix was discarded.
    pub torn_tail: bool,
}

/// What a completed checkpoint did.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// The WAL cut the image is stamped with.
    pub cut: u64,
    /// Entries written into the image.
    pub entries: u64,
    /// Bytes of the image file.
    pub bytes: u64,
    /// WAL segments deleted by the post-checkpoint truncation.
    pub segments_truncated: u64,
    /// Chunked snapshot drains abandoned before one completed clean.
    pub snapshot_retries: u64,
    /// Whether the drain had to quiesce the journal's apply stage after
    /// exhausting its online snapshot attempts (WAL appends and fsyncs
    /// kept running; application deferred for one drain).
    pub gated: bool,
    /// What caused this checkpoint (explicit call or a policy axis).
    pub trigger: CheckpointTrigger,
}

/// A crash-safe [`ShardedStore`]: WAL-backed writes, online checkpoints,
/// replay-on-open. See the crate docs for the protocol.
///
/// Reads ([`PointMap::get`], [`RangeRead`], [`SnapshotRead`],
/// [`RangeScan`]) delegate to the inner store unchanged. Writes block
/// until durable. The `wft-api` write traits panic if the journal has
/// halted, degraded, or storage failed — callers that need typed errors
/// (and degraded-mode awareness) use [`DurableStore::apply_durable`].
pub struct DurableStore<K: Key, V: Value = (), A: Augmentation<K, V> = Size>
where
    K: WalCodec,
    V: WalCodec,
{
    inner: Arc<ShardedStore<K, V, A>>,
    journal: Journal<K, V, A>,
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    config: DurableConfig,
    instruments: Arc<DurableInstruments>,
    recovery: RecoveryReport,
}

impl<K, V, A> DurableStore<K, V, A>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    /// Opens (or creates) the durable store in `dir` with default
    /// configuration, running recovery first.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DurableError> {
        Self::open_with_config(dir, DurableConfig::default())
    }

    /// Opens (or creates) the durable store in `dir` on the real
    /// filesystem: loads the newest valid checkpoint, replays the
    /// committed WAL suffix, and resumes logging in a fresh segment.
    pub fn open_with_config(
        dir: impl AsRef<Path>,
        config: DurableConfig,
    ) -> Result<Self, DurableError> {
        Self::open_with_storage(dir, config, Arc::new(FsStorage))
    }

    /// [`open_with_config`](Self::open_with_config) over an explicit
    /// [`Storage`] implementation — the seam the fault-injection harness
    /// uses to put a [`crate::storage::FaultyStorage`] under a real store.
    pub fn open_with_storage(
        dir: impl AsRef<Path>,
        config: DurableConfig,
        storage: Arc<dyn Storage>,
    ) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        storage.create_dir_all(&dir).map_err(DurableError::io)?;

        let (cut, entries) = load_newest_checkpoint::<K, V>(storage.as_ref(), &dir)
            .map_err(DurableError::io)?
            .unwrap_or((0, Vec::new()));
        let mut recovery = RecoveryReport {
            checkpoint_cut: cut,
            checkpoint_entries: entries.len() as u64,
            recovered_through: cut,
            ..RecoveryReport::default()
        };

        let inner = Arc::new(ShardedStore::from_entries_with_config(
            entries,
            config.shards,
            config.store.clone(),
        ));

        let replay = read_wal::<K, V>(storage.as_ref(), &dir).map_err(DurableError::io)?;
        recovery.torn_tail = replay.torn_tail;
        let mut expected = cut + 1;
        for (seq, ops) in replay.records {
            if seq <= cut {
                continue;
            }
            if seq != expected {
                return Err(DurableError::Corrupt(format!(
                    "log skips from seq {} to {seq} past checkpoint cut {cut}: \
                     committed records are missing",
                    expected - 1
                )));
            }
            recovery.replayed_records += 1;
            recovery.replayed_ops += ops.len() as u64;
            inner
                .apply_batch(ops)
                .map_err(|err| DurableError::Corrupt(format!("replaying seq {seq}: {err}")))?;
            recovery.recovered_through = seq;
            expected = seq + 1;
        }

        let wal = WalWriter::open(
            Arc::clone(&storage),
            &dir,
            recovery.recovered_through + 1,
            config.segment_bytes,
        )
        .map_err(DurableError::io)?;
        let instruments = Arc::new(DurableInstruments::default());
        let journal = Journal::start(
            Arc::clone(&inner),
            wal,
            Arc::clone(&instruments),
            recovery.recovered_through,
            // Seed the checkpoint policy's live-WAL view with what is on
            // disk: the replayed bytes plus the fresh segment just opened.
            (replay.bytes_read, replay.segments + 1),
            config.retry,
            config.on_persistent,
            config.fsync,
        );

        Ok(DurableStore {
            inner,
            journal,
            storage,
            dir,
            config,
            instruments,
            recovery,
        })
    }

    /// Validates `batch` and commits it through the write-ahead log,
    /// returning the typed outcomes once the batch is durable and applied.
    ///
    /// This is the write path every trait-level mutation funnels through;
    /// unlike the trait impls it reports journal failures as
    /// [`DurableError`] instead of panicking — including
    /// [`DurableError::Degraded`] while the store is in read-only mode.
    /// An empty batch is a durable no-op that never touches the log.
    pub fn apply_durable(
        &self,
        batch: Vec<StoreOp<K, V>>,
    ) -> Result<Vec<OpOutcome<V>>, DurableError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        wft_api::validate_batch(&batch, self.config.store.max_batch_ops)
            .map_err(|err| DurableError::Batch(err.to_string()))?;
        self.journal.submit(batch)
    }

    /// The inner sharded store, for read-side access to its native API
    /// (stitched reads, front machinery, invariant checks). Mutating the
    /// inner store directly would bypass the log — it is exposed
    /// read-only by convention, not by type, because every useful read
    /// entry point takes `&self` anyway.
    pub fn store(&self) -> &ShardedStore<K, V, A> {
        &self.inner
    }

    /// What recovery found when this handle opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The directory holding the WAL and checkpoints.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Point-in-time copy of the durable layer's instrumentation.
    pub fn stats(&self) -> DurableStats {
        let shared = self.journal.shared();
        // ORDERING: Acquire pairs with the log thread's Release seq stores, so a
        // stats reader sees the effects behind the reported seqs.
        self.instruments.stats(
            shared.durable_seq.load(Ordering::Acquire),
            shared.applied_seq.load(Ordering::Acquire),
        )
    }

    /// `true` once the journal has halted for good (graceful shutdown,
    /// simulated crash, or an I/O escalation under [`Escalation::Halt`])
    /// and writes are refused.
    pub fn is_halted(&self) -> bool {
        self.journal.is_halted()
    }

    /// `true` while the store is in degraded read-only mode after a
    /// persistent storage failure: reads serve from memory, writes fail
    /// fast with [`DurableError::Degraded`], and
    /// [`try_resume`](Self::try_resume) may restore write service.
    pub fn is_degraded(&self) -> bool {
        self.journal.is_degraded()
    }

    /// Attempts to leave degraded mode by re-probing storage with a
    /// genuine write (torn-tail rollback plus rotation into a fresh,
    /// fsynced segment) and re-arming the journal.
    ///
    /// Returns `Ok(true)` on a successful resume, `Ok(false)` when the
    /// store was not degraded, [`DurableError::Halted`] when the journal
    /// is past saving, and [`DurableError::Io`] when the probe found the
    /// storage still failing (the store stays degraded; call again once
    /// the disk recovers).
    pub fn try_resume(&self) -> Result<bool, DurableError> {
        self.journal.try_resume()
    }

    /// Stops logging as a crash would: queued unacknowledged batches fail
    /// with [`DurableError::Halted`] and nothing further is flushed. The
    /// on-disk state is left exactly as the crash instant would leave it —
    /// reopen the directory to exercise recovery. Reads keep working on
    /// the frozen in-memory state.
    pub fn simulate_crash(&self) {
        self.journal.halt(HaltMode::Crash);
    }

    /// Drains every queued batch to stable storage, then stops the
    /// journal. Further writes fail with [`DurableError::Halted`]. Also
    /// runs on drop; calling it explicitly just surfaces the point where
    /// durability ends.
    pub fn shutdown(&self) {
        self.journal.halt(HaltMode::Graceful);
    }
}

impl<K, V, A> DurableStore<K, V, A>
where
    K: RangeKey + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    /// Takes an online checkpoint: snapshot-drains the store through a
    /// scan cursor (writers keep writing), makes the image durable, then
    /// rotates the WAL and deletes every segment the cut covers. Returns
    /// what it did. See the module docs for why the sampled cut is
    /// sound.
    ///
    /// A checkpoint's own I/O failure surfaces as [`DurableError::Io`]
    /// but never degrades the journal: the WAL is intact and untruncated,
    /// so nothing acknowledged is at risk — retry later.
    pub fn checkpoint(&self) -> Result<CheckpointReport, DurableError> {
        self.checkpoint_with_trigger(CheckpointTrigger::Explicit)
    }

    /// Runs the configured [`CheckpointPolicy`] once: checkpoints exactly
    /// when a threshold is crossed, returning `Ok(None)` when no policy
    /// is set, the store is not running (degraded/halted), or the live
    /// WAL is under every threshold. This is the poll the background
    /// checkpointer issues; it is public so callers with their own
    /// scheduling can drive the same policy.
    pub fn maybe_checkpoint(&self) -> Result<Option<CheckpointReport>, DurableError> {
        let Some(policy) = self.config.auto_checkpoint else {
            return Ok(None);
        };
        if !matches!(self.journal.state(), JournalState::Running) {
            return Ok(None);
        }
        let shared = self.journal.shared();
        let live_bytes = shared.live_wal_bytes.load(Ordering::Relaxed);
        let live_segments = shared.live_wal_segments.load(Ordering::Relaxed);
        let trigger = if policy.max_wal_bytes.is_some_and(|t| live_bytes >= t) {
            CheckpointTrigger::WalBytes
        } else if policy.max_wal_segments.is_some_and(|t| live_segments > t) {
            CheckpointTrigger::WalSegments
        } else {
            return Ok(None);
        };
        self.checkpoint_with_trigger(trigger).map(Some)
    }

    /// Spawns a thread that polls [`maybe_checkpoint`](Self::maybe_checkpoint)
    /// every `poll`. Policy I/O errors are swallowed (the next poll
    /// retries; the WAL is never truncated by a failed checkpoint). The
    /// returned guard stops and joins the thread on drop — keep it alive
    /// for as long as the policy should run.
    pub fn spawn_auto_checkpointer(store: &Arc<Self>, poll: Duration) -> AutoCheckpointer {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_store = Arc::clone(store);
        let handle = std::thread::Builder::new()
            .name("wft-durable-ckpt".into())
            .spawn(move || {
                let (flag, wake) = &*thread_stop;
                let mut stopped = flag.lock().unwrap();
                while !*stopped {
                    drop(stopped);
                    let _ = thread_store.maybe_checkpoint();
                    stopped = flag.lock().unwrap();
                    if !*stopped {
                        stopped = wake.wait_timeout(stopped, poll).unwrap().0;
                    }
                }
            })
            .expect("spawning the auto-checkpoint thread");
        AutoCheckpointer {
            stop,
            handle: Some(handle),
        }
    }

    fn checkpoint_with_trigger(
        &self,
        trigger: CheckpointTrigger,
    ) -> Result<CheckpointReport, DurableError> {
        match self.journal.state() {
            JournalState::Running => {}
            JournalState::Degraded(msg) => return Err(DurableError::Degraded(msg)),
            JournalState::Halted(reason) => return Err(DurableError::Halted(reason)),
        }
        let started = Instant::now();
        // ORDERING: Acquire pairs with the log thread's Release `applied_seq`
        // store — the checkpoint cut includes every applied effect.
        let cut = self.journal.shared().applied_seq.load(Ordering::Acquire);
        wft_obs::trace::emit(
            TraceKind::CheckpointBegin,
            (trigger.code() << 14) | (cut & 0x3FFF) as u16,
        );

        let mut snapshot_retries = 0u64;
        let mut gated = false;
        let entries = loop {
            // Fallback under sustained write pressure: the in-memory
            // store is mutated only by the log thread's apply stage, so
            // holding its gate makes the store quiescent and the very
            // next drain completes `Snapshot` in one pass. Writers are
            // not paused — WAL appends and fsyncs keep running; only
            // application (and acknowledgement) defers for one drain,
            // and the backlog commits as one large group after. Without
            // the gate, a lock-free snapshot drain can starve forever on
            // few cores (every reschedule lets an apply expire the cut).
            let _quiesced = if snapshot_retries >= u64::from(CHECKPOINT_DRAIN_ATTEMPTS) {
                gated = true;
                Some(self.journal.shared().apply_gate.lock().unwrap())
            } else {
                None
            };
            let mut cursor = self.inner.scan(RangeSpec::all());
            let entries = cursor.drain(self.config.checkpoint_chunk.max(1));
            if cursor.consistency() == ScanConsistency::Snapshot || gated {
                // A gated drain is Snapshot unless something mutated the
                // inner store behind the journal's back (a convention
                // breach, see `store()`); even then the image stays safe
                // — replay from the cut repairs every key — so take it
                // rather than loop forever.
                debug_assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
                break entries;
            }
            snapshot_retries += 1;
        };

        let bytes = write_checkpoint(self.storage.as_ref(), &self.dir, cut, &entries)
            .map_err(DurableError::io)?;

        let segments_truncated = {
            let mut wal = self.journal.shared().wal.lock().unwrap();
            wal.rotate().map_err(DurableError::io)?;
            self.instruments
                .wal_rotations
                .fetch_add(1, Ordering::Relaxed);
            wal.truncate_through(cut).map_err(DurableError::io)?
        };
        // Reset the policy's live-WAL view: the image supersedes the
        // truncated prefix and the active segment is freshly rotated.
        // Approximate by design — bytes appended between the cut sample
        // and here are under-counted until the next checkpoint.
        let shared = self.journal.shared();
        shared.live_wal_bytes.store(0, Ordering::Relaxed);
        shared.live_wal_segments.store(1, Ordering::Relaxed);
        self.instruments
            .segments_truncated
            .fetch_add(segments_truncated, Ordering::Relaxed);
        self.instruments.checkpoints.fetch_add(1, Ordering::Relaxed);
        if trigger != CheckpointTrigger::Explicit {
            self.instruments
                .auto_checkpoints
                .fetch_add(1, Ordering::Relaxed);
        }
        self.instruments
            .checkpoint_duration
            .record(started.elapsed().as_nanos() as u64);
        wft_obs::trace::emit(TraceKind::CheckpointEnd, (cut & 0xFFFF) as u16);

        Ok(CheckpointReport {
            cut,
            entries: entries.len() as u64,
            bytes,
            segments_truncated,
            snapshot_retries,
            gated,
            trigger,
        })
    }
}

/// Guard for the background checkpoint thread spawned by
/// [`DurableStore::spawn_auto_checkpointer`]; stops and joins it on drop.
#[derive(Debug)]
pub struct AutoCheckpointer {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for AutoCheckpointer {
    fn drop(&mut self) {
        let (flag, wake) = &*self.stop;
        *flag.lock().unwrap() = true;
        wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Point mutations are single-op durable batches; reads delegate to the
/// inner store.
///
/// # Panics
///
/// The mutating methods panic when the journal has halted, degraded, or
/// storage failed ([`DurableStore::apply_durable`] is the fallible
/// spelling).
///
/// One seam: a losing [`PointMap::insert`] reports
/// `Unchanged { current }` by re-reading the key *after* the batch
/// applied, so `current` can reflect a later write rather than the value
/// that caused the loss. The store's per-key linearization order is
/// unaffected.
impl<K, V, A> PointMap<K, V> for DurableStore<K, V, A>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    fn insert(&self, key: K, value: V) -> UpdateOutcome<V> {
        let outcomes = self
            .apply_durable(vec![StoreOp::Insert { key, value }])
            .expect("durable insert");
        match outcomes.into_iter().next() {
            Some(OpOutcome::Inserted(true)) => UpdateOutcome::Applied { prior: None },
            _ => UpdateOutcome::Unchanged {
                current: self.inner.get(&key),
            },
        }
    }

    fn replace(&self, key: K, value: V) -> UpdateOutcome<V> {
        let outcomes = self
            .apply_durable(vec![StoreOp::InsertOrReplace { key, value }])
            .expect("durable replace");
        match outcomes.into_iter().next() {
            Some(OpOutcome::Replaced(prior)) => UpdateOutcome::Applied { prior },
            _ => unreachable!("InsertOrReplace yields Replaced"),
        }
    }

    fn remove(&self, key: &K) -> UpdateOutcome<V> {
        let outcomes = self
            .apply_durable(vec![StoreOp::RemoveEntry { key: *key }])
            .expect("durable remove");
        match outcomes.into_iter().next() {
            Some(OpOutcome::RemovedEntry(Some(prior))) => {
                UpdateOutcome::Applied { prior: Some(prior) }
            }
            _ => UpdateOutcome::Unchanged { current: None },
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        self.inner.get(key)
    }

    fn contains(&self, key: &K) -> bool {
        self.inner.contains(key)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    // The trait defaults are non-atomic get-then-write compositions; here
    // they are single-op transactional batches resolved on the journal's
    // sequencer thread, so the read-modify-write is atomic *and* the WAL
    // records only its physical effect.
    fn patch(&self, key: K, patch: wft_api::PatchFn<V>) -> Option<V> {
        let outcomes = self
            .apply_durable(vec![StoreOp::Patch { key, patch }])
            .expect("durable patch");
        match outcomes.into_iter().next() {
            Some(OpOutcome::Patched(after)) => after,
            _ => unreachable!("Patch yields Patched"),
        }
    }

    fn compare_and_set(&self, key: K, expect: Option<V>, value: V) -> bool {
        let outcomes = self
            .apply_durable(vec![StoreOp::CompareAndSet { key, expect, value }])
            .expect("durable compare-and-set");
        match outcomes.into_iter().next() {
            Some(OpOutcome::CompareSet(applied)) => applied,
            _ => unreachable!("CompareAndSet yields CompareSet"),
        }
    }
}

/// Batches go through the log; validation errors stay typed.
///
/// # Panics
///
/// Panics when the journal has halted, degraded, or storage failed (see
/// [`DurableStore::apply_durable`] for the fallible spelling).
impl<K, V, A> BatchApply<K, V> for DurableStore<K, V, A>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    fn apply_batch(&self, batch: Vec<StoreOp<K, V>>) -> Result<Vec<OpOutcome<V>>, BatchError<K>> {
        wft_api::validate_batch(&batch, self.config.store.max_batch_ops)?;
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        Ok(self.journal.submit(batch).expect("durable batch"))
    }
}

impl<K, V, A> RangeRead<K, V> for DurableStore<K, V, A>
where
    K: RangeKey + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    type Agg = A::Agg;

    fn range_agg(&self, range: RangeSpec<K>) -> A::Agg {
        RangeRead::range_agg(&*self.inner, range)
    }

    fn count(&self, range: RangeSpec<K>) -> u64 {
        RangeRead::count(&*self.inner, range)
    }

    fn collect_range(&self, range: RangeSpec<K>) -> Vec<(K, V)> {
        RangeRead::collect_range(&*self.inner, range)
    }
}

/// Scans hand out the inner store's cursor directly — durability adds
/// nothing to the read path.
impl<K, V, A> RangeScan<K, V> for DurableStore<K, V, A>
where
    K: RangeKey + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    type Cursor<'a>
        = StoreScanCursor<'a, K, V, A>
    where
        Self: 'a;

    fn scan(&self, range: RangeSpec<K>) -> StoreScanCursor<'_, K, V, A> {
        self.inner.scan(range)
    }
}

impl<K, V, A> TimestampFront for DurableStore<K, V, A>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    fn settle_front(&self) -> u64 {
        TimestampFront::settle_front(&*self.inner)
    }

    fn front_advertised(&self) -> u64 {
        TimestampFront::front_advertised(&*self.inner)
    }

    fn front_resolved(&self) -> u64 {
        TimestampFront::front_resolved(&*self.inner)
    }
}

impl<K, V, A> SnapshotRead<K, V> for DurableStore<K, V, A>
where
    K: RangeKey + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    fn acquire_snapshot(&self) -> SnapshotToken {
        self.inner.acquire_snapshot()
    }

    fn snapshot_valid(&self, token: &SnapshotToken) -> bool {
        self.inner.snapshot_valid(token)
    }

    fn range_agg_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<Self::Agg> {
        self.inner.range_agg_at(token, range)
    }

    fn count_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<u64> {
        self.inner.count_at(token, range)
    }

    fn collect_range_at(&self, token: &SnapshotToken, range: RangeSpec<K>) -> Option<Vec<(K, V)>> {
        self.inner.collect_range_at(token, range)
    }
}

/// Pushes the `durable_*` metrics and forwards the inner store's, so one
/// registry source covers the whole durable stack. The metrics read the
/// same atomics [`DurableStore::stats`] reads — the two views can never
/// drift.
impl<K, V, A> wft_obs::MetricsSource for DurableStore<K, V, A>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    fn collect_metrics(&self, out: &mut wft_obs::MetricsSnapshot) {
        let stats = self.stats();
        out.push_counter("durable_wal_appends", stats.wal_appends);
        out.push_counter("durable_wal_fsyncs", stats.wal_fsyncs);
        out.push_counter("durable_wal_stalls", stats.wal_stalls);
        out.push_counter("durable_wal_bytes", stats.wal_bytes);
        out.push_counter("durable_wal_rotations", stats.wal_rotations);
        out.push_counter("durable_checkpoints", stats.checkpoints);
        out.push_counter("durable_segments_truncated", stats.segments_truncated);
        out.push_counter("durable_io_retries", stats.io_retries);
        out.push_counter("durable_degraded_entries", stats.degraded_entries);
        out.push_counter("durable_resumes", stats.resumes);
        out.push_counter("durable_auto_checkpoints", stats.auto_checkpoints);
        out.push_counter(
            "durable_recovery_replayed_records",
            self.recovery.replayed_records,
        );
        out.push_counter("durable_recovery_replayed_ops", self.recovery.replayed_ops);
        out.push_gauge("durable_degraded", stats.degraded as i64);
        out.push_gauge("durable_seq_durable", stats.durable_seq as i64);
        out.push_gauge("durable_seq_applied", stats.applied_seq as i64);
        out.push_gauge(
            "durable_recovered_through",
            self.recovery.recovered_through as i64,
        );
        out.push_histogram("durable_commit_latency_ns", stats.commit_latency);
        out.push_histogram("durable_group_size", stats.group_size);
        out.push_histogram("durable_checkpoint_duration_ns", stats.checkpoint_duration);
        self.inner.collect_metrics(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::HaltReason;
    use crate::scratch::ScratchDir;
    use crate::storage::FaultyStorage;
    use std::io;

    fn reopen(dir: &Path) -> DurableStore<i64, i64> {
        DurableStore::open(dir).unwrap()
    }

    /// A config whose retry loop gives up fast, for fault tests.
    fn snappy_config() -> DurableConfig {
        DurableConfig {
            retry: RetryPolicy {
                attempts: 2,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(200),
            },
            ..DurableConfig::default()
        }
    }

    #[test]
    fn writes_survive_reopen() {
        let dir = ScratchDir::new("store-reopen");
        {
            let store = reopen(dir.path());
            assert!(PointMap::insert(&store, 1, 10).is_applied());
            assert!(PointMap::insert(&store, 2, 20).is_applied());
            assert_eq!(
                PointMap::replace(&store, 1, 11),
                UpdateOutcome::Applied { prior: Some(10) }
            );
            store.shutdown();
        }
        let store = reopen(dir.path());
        assert_eq!(store.recovery().replayed_records, 3);
        assert_eq!(store.recovery().recovered_through, 3);
        assert_eq!(PointMap::get(&store, &1), Some(11));
        assert_eq!(PointMap::get(&store, &2), Some(20));
        assert_eq!(PointMap::len(&store), 2);
    }

    #[test]
    fn simulated_crash_keeps_acknowledged_writes() {
        let dir = ScratchDir::new("store-crash");
        {
            let store = reopen(dir.path());
            for k in 0..50 {
                assert!(PointMap::insert(&store, k, k * 2).is_applied());
            }
            store.simulate_crash();
            assert!(store.is_halted());
            assert_eq!(
                store.apply_durable(vec![StoreOp::Insert { key: 99, value: 0 }]),
                Err(DurableError::Halted(HaltReason::Crash))
            );
            // Reads keep working on the frozen state.
            assert_eq!(PointMap::len(&store), 50);
        }
        let store = reopen(dir.path());
        assert_eq!(PointMap::len(&store), 50);
        for k in 0..50 {
            assert_eq!(PointMap::get(&store, &k), Some(k * 2));
        }
    }

    #[test]
    fn checkpoint_truncates_and_recovery_is_exact() {
        let dir = ScratchDir::new("store-ckpt");
        {
            let store = reopen(dir.path());
            store
                .apply_durable(
                    (0..100)
                        .map(|k| StoreOp::Insert { key: k, value: k })
                        .collect(),
                )
                .unwrap();
            let report = store.checkpoint().unwrap();
            assert_eq!(report.cut, 1);
            assert_eq!(report.entries, 100);
            assert_eq!(report.trigger, CheckpointTrigger::Explicit);
            // Post-checkpoint writes land in the fresh segment.
            store
                .apply_durable(vec![
                    StoreOp::RemoveEntry { key: 0 },
                    StoreOp::InsertOrReplace { key: 1, value: -1 },
                ])
                .unwrap();
            store.shutdown();
        }
        let store = reopen(dir.path());
        assert_eq!(store.recovery().checkpoint_cut, 1);
        assert_eq!(store.recovery().checkpoint_entries, 100);
        assert_eq!(store.recovery().replayed_records, 1);
        assert_eq!(PointMap::len(&store), 99);
        assert_eq!(PointMap::get(&store, &0), None);
        assert_eq!(PointMap::get(&store, &1), Some(-1));
        store.store().check_invariants();
    }

    #[test]
    fn logical_ops_resolve_physically_and_survive_reopen() {
        let dir = ScratchDir::new("store-logical");
        {
            let store = reopen(dir.path());
            // Patch is an atomic RMW on the journal's sequencer thread.
            assert_eq!(
                PointMap::patch(&store, 1, |c| Some(c.unwrap_or(0) + 1)),
                Some(1)
            );
            assert_eq!(
                PointMap::patch(&store, 1, |c| Some(c.unwrap_or(0) + 1)),
                Some(2)
            );
            // CAS with expect: None is insert-if-absent.
            assert!(PointMap::compare_and_set(&store, 2, None, 5));
            assert!(!PointMap::compare_and_set(&store, 2, Some(4), 9));
            // A mixed transactional batch: the Get reads through the
            // journal, the Patch clears, the CAS hits.
            let outcomes = store
                .apply_durable(vec![
                    StoreOp::Get { key: 1 },
                    StoreOp::Patch {
                        key: 1,
                        patch: |_| None,
                    },
                    StoreOp::CompareAndSet {
                        key: 2,
                        expect: Some(5),
                        value: 6,
                    },
                ])
                .unwrap();
            assert_eq!(
                outcomes,
                vec![
                    OpOutcome::Got(Some(2)),
                    OpOutcome::Patched(None),
                    OpOutcome::CompareSet(true),
                ]
            );
            // A pure-read batch resolves to zero physical ops but still
            // takes a WAL sequence number (an empty record).
            let appends_before = store.stats().wal_appends;
            assert_eq!(
                store.apply_durable(vec![StoreOp::Get { key: 7 }]).unwrap(),
                vec![OpOutcome::Got(None)]
            );
            assert_eq!(store.stats().wal_appends, appends_before + 1);
            store.shutdown();
        }
        // The WAL holds only physical ops; replay reconstructs the exact
        // acknowledged state, and reopening twice is idempotent.
        for _ in 0..2 {
            let store = reopen(dir.path());
            assert_eq!(store.recovery().replayed_records, 6);
            assert_eq!(PointMap::get(&store, &1), None);
            assert_eq!(PointMap::get(&store, &2), Some(6));
            assert_eq!(PointMap::len(&store), 1);
            store.store().check_invariants();
            store.shutdown();
        }
    }

    #[test]
    fn batch_validation_is_typed_and_logs_nothing() {
        let dir = ScratchDir::new("store-validate");
        let store = reopen(dir.path());
        let err = BatchApply::apply_batch(
            &store,
            vec![
                StoreOp::Insert { key: 1, value: 1 },
                StoreOp::Remove { key: 1 },
            ],
        )
        .unwrap_err();
        assert_eq!(err, BatchError::DuplicateKey { key: 1 });
        assert_eq!(store.stats().wal_appends, 0, "rejected batch never logged");
        assert!(BatchApply::apply_batch(&store, Vec::new())
            .unwrap()
            .is_empty());
        assert_eq!(store.stats().wal_appends, 0, "empty batch never logged");
    }

    #[test]
    fn stats_count_the_write_path() {
        let dir = ScratchDir::new("store-stats");
        let store = reopen(dir.path());
        for k in 0..10 {
            PointMap::insert(&store, k, k);
        }
        store.checkpoint().unwrap();
        let stats = store.stats();
        assert_eq!(stats.wal_appends, 10);
        assert!(stats.wal_fsyncs >= 1);
        assert!(stats.wal_bytes > 0);
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.durable_seq, 10);
        assert_eq!(stats.applied_seq, 10);
        assert_eq!(stats.commit_latency.count, 10);
        assert_eq!(stats.group_size.count, stats.wal_fsyncs);
        assert_eq!(stats.io_retries, 0);
        assert_eq!(stats.degraded, 0);
    }

    #[test]
    fn snapshot_and_scan_read_through() {
        let dir = ScratchDir::new("store-reads");
        let store: DurableStore<i64> = DurableStore::open(dir.path()).unwrap();
        store
            .apply_durable(
                (0..64)
                    .map(|k| StoreOp::Insert { key: k, value: () })
                    .collect(),
            )
            .unwrap();
        assert_eq!(RangeRead::count(&store, RangeSpec::from_bounds(10..20)), 10);
        let token = store.acquire_snapshot();
        assert_eq!(store.count_at(&token, RangeSpec::all()), Some(64));
        let mut cursor = store.scan(RangeSpec::all());
        let drained = cursor.drain(7);
        assert_eq!(drained.len(), 64);
        assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
    }

    #[test]
    fn transient_faults_are_retried_invisibly() {
        let dir = ScratchDir::new("store-transient");
        let faulty = FaultyStorage::over_fs();
        // Fail every 7th storage operation once; the retry loop should
        // absorb all of it.
        faulty.every(7, io::ErrorKind::Interrupted);
        let store: DurableStore<i64, i64> =
            DurableStore::open_with_storage(dir.path(), snappy_config(), Arc::new(faulty.clone()))
                .unwrap();
        for k in 0..200 {
            store
                .apply_durable(vec![StoreOp::Insert { key: k, value: k }])
                .unwrap();
        }
        assert!(!store.is_degraded());
        assert!(store.stats().io_retries > 0, "the drizzle was really felt");
        assert_eq!(PointMap::len(&store), 200);

        // Stop the drizzle and reopen clean: everything acknowledged is
        // on disk.
        faulty.every(0, io::ErrorKind::Interrupted);
        store.shutdown();
        drop(store);
        let store = reopen(dir.path());
        assert_eq!(PointMap::len(&store), 200);
    }

    #[test]
    fn persistent_outage_degrades_then_resumes() {
        let dir = ScratchDir::new("store-degrade");
        let faulty = FaultyStorage::over_fs();
        let store: DurableStore<i64, i64> =
            DurableStore::open_with_storage(dir.path(), snappy_config(), Arc::new(faulty.clone()))
                .unwrap();
        for k in 0..20 {
            store
                .apply_durable(vec![StoreOp::Insert { key: k, value: k }])
                .unwrap();
        }

        faulty.outage_now(io::ErrorKind::Other);
        let err = store
            .apply_durable(vec![StoreOp::Insert { key: 99, value: 99 }])
            .unwrap_err();
        assert!(matches!(err, DurableError::Degraded(_)), "{err:?}");
        assert!(store.is_degraded());
        assert!(!store.is_halted());
        // Reads keep serving the acknowledged prefix.
        assert_eq!(PointMap::len(&store), 20);
        assert_eq!(PointMap::get(&store, &7), Some(7));
        assert_eq!(PointMap::get(&store, &99), None);
        // Writes keep failing fast, typed.
        assert!(matches!(
            store.apply_durable(vec![StoreOp::Insert { key: 98, value: 98 }]),
            Err(DurableError::Degraded(_))
        ));
        // Checkpoints refuse too.
        assert!(matches!(store.checkpoint(), Err(DurableError::Degraded(_))));
        let stats = store.stats();
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.degraded_entries, 1);

        // A resume attempt while the disk is still dead fails and stays
        // degraded.
        assert!(matches!(store.try_resume(), Err(DurableError::Io(_))));
        assert!(store.is_degraded());

        // Heal, resume, and write again.
        faulty.heal();
        assert_eq!(store.try_resume(), Ok(true));
        assert!(!store.is_degraded());
        assert_eq!(store.try_resume(), Ok(false), "second resume is a no-op");
        store
            .apply_durable(vec![StoreOp::Insert { key: 99, value: 99 }])
            .unwrap();
        assert_eq!(store.stats().resumes, 1);
        assert_eq!(store.stats().degraded, 0);

        // Everything acknowledged (before and after the outage) survives
        // a clean-storage reopen.
        store.shutdown();
        drop(store);
        let store = reopen(dir.path());
        assert_eq!(PointMap::len(&store), 21);
        assert_eq!(PointMap::get(&store, &99), Some(99));
    }

    #[test]
    fn escalation_halt_preserves_the_legacy_behaviour() {
        let dir = ScratchDir::new("store-halt-io");
        let faulty = FaultyStorage::over_fs();
        let config = DurableConfig {
            on_persistent: Escalation::Halt,
            ..snappy_config()
        };
        let store: DurableStore<i64, i64> =
            DurableStore::open_with_storage(dir.path(), config, Arc::new(faulty.clone())).unwrap();
        store
            .apply_durable(vec![StoreOp::Insert { key: 1, value: 1 }])
            .unwrap();
        faulty.outage_now(io::ErrorKind::Other);
        let err = store
            .apply_durable(vec![StoreOp::Insert { key: 2, value: 2 }])
            .unwrap_err();
        assert!(matches!(err, DurableError::Io(_)), "{err:?}");
        assert!(store.is_halted());
        assert!(!store.is_degraded());
        // Halted-for-I/O is not resumable.
        faulty.heal();
        assert_eq!(
            store.try_resume(),
            Err(DurableError::Halted(HaltReason::Io))
        );
        assert_eq!(
            store.apply_durable(vec![StoreOp::Insert { key: 3, value: 3 }]),
            Err(DurableError::Halted(HaltReason::Io))
        );
    }

    #[test]
    fn checkpoint_policy_triggers_on_live_bytes() {
        let dir = ScratchDir::new("store-policy");
        let config = DurableConfig {
            auto_checkpoint: Some(CheckpointPolicy {
                max_wal_bytes: Some(512),
                max_wal_segments: None,
            }),
            ..DurableConfig::default()
        };
        let store: DurableStore<i64, i64> =
            DurableStore::open_with_config(dir.path(), config).unwrap();
        assert!(
            store.maybe_checkpoint().unwrap().is_none(),
            "empty log is under threshold"
        );
        store
            .apply_durable(
                (0..100)
                    .map(|k| StoreOp::Insert { key: k, value: k })
                    .collect(),
            )
            .unwrap();
        let report = store
            .maybe_checkpoint()
            .unwrap()
            .expect("100 records cross 512 live bytes");
        assert_eq!(report.trigger, CheckpointTrigger::WalBytes);
        assert_eq!(report.entries, 100);
        assert_eq!(store.stats().auto_checkpoints, 1);
        assert!(
            store.maybe_checkpoint().unwrap().is_none(),
            "freshly truncated log is back under threshold"
        );
    }

    #[test]
    fn auto_checkpointer_thread_fires_and_stops() {
        let dir = ScratchDir::new("store-auto");
        let config = DurableConfig {
            auto_checkpoint: Some(CheckpointPolicy {
                max_wal_bytes: Some(256),
                max_wal_segments: None,
            }),
            fsync: false,
            ..DurableConfig::default()
        };
        let store: Arc<DurableStore<i64, i64>> =
            Arc::new(DurableStore::open_with_config(dir.path(), config).unwrap());
        let guard = DurableStore::spawn_auto_checkpointer(&store, Duration::from_millis(1));
        store
            .apply_durable(
                (0..200)
                    .map(|k| StoreOp::Insert { key: k, value: k })
                    .collect(),
            )
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while store.stats().auto_checkpoints == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            store.stats().auto_checkpoints >= 1,
            "the poller took the policy checkpoint"
        );
        drop(guard); // joins the thread
        store.shutdown();
    }
}
