//! The storage boundary: every byte the durable tier reads or writes goes
//! through the [`Storage`] trait, so the I/O failure surface is a seam
//! rather than a scatter of `std::fs` calls.
//!
//! Two implementations ship:
//!
//! * [`FsStorage`] — the real filesystem, with the exact call pattern the
//!   pre-trait code used (`O_APPEND` segment files, `sync_data`,
//!   rename-into-place, directory fsyncs);
//! * [`FaultyStorage`] — a deterministic fault injector wrapping any other
//!   storage. A plan of [`Fault`]s schedules *transient* faults (fail one
//!   operation with a chosen [`io::ErrorKind`], including genuine short
//!   writes that tear bytes onto the backing store) and *persistent*
//!   outages (every operation fails until [`FaultyStorage::heal`]), keyed
//!   either by a global operation index or by the n-th occurrence of one
//!   [`FaultOp`]. Because the wrapped storage is usually the real
//!   filesystem, everything the injector lets through lands on disk — so
//!   recovery code paths are exercised unmodified against genuinely torn
//!   files.
//!
//! The trait is deliberately tiny and object-safe: the WAL and the
//! checkpointer need append-only files, whole-file reads, atomic
//! rename-into-place, unlink, and directory fsyncs — nothing else. Keeping
//! it minimal is what makes the fault matrix in `tests/durable_faults.rs`
//! exhaustive rather than aspirational.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One open file handle behind the [`Storage`] seam.
///
/// `append` has `write_all` semantics on success; on failure a *prefix* of
/// the buffer may have reached the backing store (that is what a torn
/// write is), and the caller is expected to [`truncate`](Self::truncate)
/// back to its last known-durable length before retrying.
pub trait StorageFile: Send {
    /// Appends `buf` at the end of the file (all of it, on success).
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Forces written bytes to stable storage (`fdatasync`).
    fn sync(&mut self) -> io::Result<()>;

    /// Truncates the file to `len` bytes — the torn-tail rollback
    /// primitive the retry path relies on.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// The file operations the durable tier performs, as an object-safe trait
/// so fault injection is a wrapper, not a rebuild.
pub trait Storage: Send + Sync {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Opens `path` for appending, creating it if absent (WAL segments).
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Creates `path` empty (truncating any previous contents) for
    /// writing (checkpoint temp images).
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Atomically renames `from` to `to` (the checkpoint commit point).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Unlinks `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Fsyncs `dir` so creates/renames/unlinks inside it are durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// File names (not paths) of the entries in `dir`.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
}

// ---------------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------------

/// The real filesystem. Stateless; one global instance would do, but the
/// type is trivially constructible so callers don't need a registry.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsStorage;

struct FsFile(File);

impl StorageFile for FsFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl Storage for FsStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(FsFile(file)))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(FsFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
        Ok(names)
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// The operation classes a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// [`Storage::open_append`] (WAL segment creation).
    OpenAppend,
    /// [`Storage::create_truncate`] (checkpoint temp file creation).
    Create,
    /// [`StorageFile::append`].
    Append,
    /// [`StorageFile::sync`] (file fsync).
    Sync,
    /// [`StorageFile::truncate`] (torn-tail rollback).
    Truncate,
    /// [`Storage::rename`] (checkpoint commit point).
    Rename,
    /// [`Storage::sync_dir`] (directory fsync).
    DirSync,
    /// [`Storage::read`] (recovery reads).
    Read,
    /// [`Storage::remove_file`] (WAL truncation / checkpoint GC).
    Remove,
}

impl FaultOp {
    const ALL: [FaultOp; 9] = [
        FaultOp::OpenAppend,
        FaultOp::Create,
        FaultOp::Append,
        FaultOp::Sync,
        FaultOp::Truncate,
        FaultOp::Rename,
        FaultOp::DirSync,
        FaultOp::Read,
        FaultOp::Remove,
    ];
}

/// What an injected fault does to the targeted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails once with this error kind and is **not**
    /// performed (the classic transient blip: `EINTR`, `ENOSPC`, a
    /// one-off `EIO`).
    Error(io::ErrorKind),
    /// Appends only: half the buffer reaches the backing store, then the
    /// call fails with [`io::ErrorKind::Interrupted`] — a genuinely torn
    /// write the rollback path must clean up.
    ShortWrite,
    /// From this operation on, **every** operation fails with this error
    /// kind until [`FaultyStorage::heal`] — a dead disk / pulled cable.
    /// The triggering operation itself is not performed.
    Outage(io::ErrorKind),
}

/// One scheduled fault: fires when its trigger matches, at most once.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    trigger: Trigger,
    kind: FaultKind,
}

#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// The n-th faultable operation overall (0-based).
    Nth(u64),
    /// The n-th occurrence of one operation class (0-based).
    NthOf(FaultOp, u64),
}

impl Fault {
    /// Fault the `n`-th faultable operation overall (0-based).
    pub fn nth(n: u64, kind: FaultKind) -> Fault {
        Fault {
            trigger: Trigger::Nth(n),
            kind,
        }
    }

    /// Fault the `n`-th occurrence of `op` (0-based).
    pub fn nth_of(op: FaultOp, n: u64, kind: FaultKind) -> Fault {
        Fault {
            trigger: Trigger::NthOf(op, n),
            kind,
        }
    }
}

#[derive(Debug, Default)]
struct PlanState {
    scheduled: Vec<Fault>,
    /// Fail every operation with this kind until healed.
    outage: Option<io::ErrorKind>,
    /// `Some((period, kind))`: every `period`-th faultable op fails once
    /// transiently — a background drizzle for soak-style harness runs.
    periodic: Option<(u64, io::ErrorKind)>,
    /// Per-class operation counts (indexed by position in `FaultOp::ALL`).
    per_op: [u64; 9],
}

/// The plan state shared by a [`FaultyStorage`], its clones, and every
/// file handle it has opened.
#[derive(Debug, Default)]
struct FaultShared {
    ops: AtomicU64,
    fired: AtomicU64,
    state: Mutex<PlanState>,
}

/// Deterministic fault-injecting wrapper around another [`Storage`].
///
/// Cloning is cheap and every clone observes one plan, so a test can keep
/// a handle, hand a clone to the store, and then [`heal`](Self::heal) an
/// outage or [`schedule`](Self::schedule) more faults while the store
/// runs.
#[derive(Clone)]
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    shared: Arc<FaultShared>,
}

impl FaultyStorage {
    /// Wraps `inner` with an empty fault plan (faults are added with
    /// [`schedule`](Self::schedule) / [`outage_now`](Self::outage_now) /
    /// [`every`](Self::every)).
    pub fn new(inner: Arc<dyn Storage>) -> FaultyStorage {
        FaultyStorage {
            inner,
            shared: Arc::new(FaultShared::default()),
        }
    }

    /// Wraps the real filesystem.
    pub fn over_fs() -> FaultyStorage {
        FaultyStorage::new(Arc::new(FsStorage))
    }

    /// Adds one fault to the schedule.
    pub fn schedule(&self, fault: Fault) {
        self.shared.state.lock().unwrap().scheduled.push(fault);
    }

    /// Starts a persistent outage immediately: every subsequent operation
    /// fails with `kind` until [`heal`](Self::heal).
    pub fn outage_now(&self, kind: io::ErrorKind) {
        self.shared.state.lock().unwrap().outage = Some(kind);
    }

    /// Makes every `period`-th faultable operation fail once with `kind`
    /// (transient drizzle). `period == 0` disables.
    pub fn every(&self, period: u64, kind: io::ErrorKind) {
        self.shared.state.lock().unwrap().periodic = if period == 0 {
            None
        } else {
            Some((period, kind))
        };
    }

    /// Ends any outage and clears all not-yet-fired scheduled faults (the
    /// disk came back; the planned misfortunes with it).
    pub fn heal(&self) {
        let mut state = self.shared.state.lock().unwrap();
        state.outage = None;
        state.scheduled.clear();
    }

    /// `true` while a persistent outage is active.
    pub fn is_down(&self) -> bool {
        self.shared.state.lock().unwrap().outage.is_some()
    }

    /// Total faultable operations observed so far.
    pub fn ops(&self) -> u64 {
        self.shared.ops.load(Ordering::Relaxed)
    }

    /// Faults that actually fired (scheduled, periodic, and every
    /// operation failed by an outage).
    pub fn faults_fired(&self) -> u64 {
        self.shared.fired.load(Ordering::Relaxed)
    }
}

impl FaultShared {
    fn err(kind: io::ErrorKind, op: FaultOp) -> io::Error {
        io::Error::new(kind, format!("injected fault on {op:?}"))
    }

    /// The single decision point: counts the operation, fires at most one
    /// fault for it. `Ok(None)` = proceed; `Ok(Some(ShortWrite))` = the
    /// append must tear; `Err` = the operation fails without running.
    fn check(&self, op: FaultOp) -> io::Result<Option<FaultKind>> {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock().unwrap();
        // wft-lint: allow(forbidden-api) -- infallible: `op` is by construction a member of FaultOp::ALL.
        let op_index = FaultOp::ALL.iter().position(|&o| o == op).unwrap();
        let op_n = state.per_op[op_index];
        state.per_op[op_index] += 1;

        if let Some(kind) = state.outage {
            self.fired.fetch_add(1, Ordering::Relaxed);
            return Err(Self::err(kind, op));
        }

        let hit = state
            .scheduled
            .iter()
            .position(|fault| match fault.trigger {
                Trigger::Nth(at) => at == n,
                Trigger::NthOf(target, at) => target == op && at == op_n,
            });
        if let Some(i) = hit {
            let fault = state.scheduled.swap_remove(i);
            self.fired.fetch_add(1, Ordering::Relaxed);
            return match fault.kind {
                FaultKind::Error(kind) => Err(Self::err(kind, op)),
                FaultKind::ShortWrite if op == FaultOp::Append => Ok(Some(FaultKind::ShortWrite)),
                // A short write scheduled onto a non-append op degenerates
                // to a transient error — the op has no bytes to tear.
                FaultKind::ShortWrite => Err(Self::err(io::ErrorKind::Interrupted, op)),
                FaultKind::Outage(kind) => {
                    state.outage = Some(kind);
                    Err(Self::err(kind, op))
                }
            };
        }

        if let Some((period, kind)) = state.periodic {
            if n % period == period - 1 {
                self.fired.fetch_add(1, Ordering::Relaxed);
                return Err(Self::err(kind, op));
            }
        }
        Ok(None)
    }
}

impl std::fmt::Debug for FaultyStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyStorage")
            .field("ops", &self.ops())
            .field("fired", &self.faults_fired())
            .field("down", &self.is_down())
            .finish()
    }
}

/// A file handle that keeps consulting the shared plan on every call.
struct FaultyFile {
    inner: Box<dyn StorageFile>,
    shared: Arc<FaultShared>,
}

impl StorageFile for FaultyFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.shared.check(FaultOp::Append)? {
            Some(FaultKind::ShortWrite) => {
                // Tear the write for real: a prefix lands on the backing
                // store, then the call fails.
                self.inner.append(&buf[..buf.len() / 2])?;
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected short write",
                ))
            }
            _ => self.inner.append(buf),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.shared.check(FaultOp::Sync)?;
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.shared.check(FaultOp::Truncate)?;
        self.inner.truncate(len)
    }
}

impl Storage for FaultyStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Directory creation happens once, before traffic; not a fault
        // target (a store that never opens is not an interesting failure).
        self.inner.create_dir_all(dir)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.shared.check(FaultOp::OpenAppend)?;
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FaultyFile {
            inner,
            shared: Arc::clone(&self.shared),
        }))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.shared.check(FaultOp::Create)?;
        let inner = self.inner.create_truncate(path)?;
        Ok(Box::new(FaultyFile {
            inner,
            shared: Arc::clone(&self.shared),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.shared.check(FaultOp::Read)?;
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.shared.check(FaultOp::Rename)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.shared.check(FaultOp::Remove)?;
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.shared.check(FaultOp::DirSync)?;
        self.inner.sync_dir(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        // Listing is read-only metadata; recovery always pairs it with
        // `read`, which is a fault target.
        self.inner.list_dir(dir)
    }
}

/// Transient-vs-fail-fast classification for the retry policy.
///
/// Kinds that indicate a *structural* problem — the path is gone, the
/// process lacks permission, the arguments are nonsense — will not be
/// cured by waiting, so the journal escalates immediately. Everything
/// else (`EINTR`, `EAGAIN`, `ENOSPC`, `EIO`, timeouts, …) gets the retry
/// budget: transient and persistent faults are distinguished by
/// *duration*, not by errno, and exhausting the budget is what converts
/// one into the other.
pub fn is_fail_fast(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::NotFound
            | io::ErrorKind::PermissionDenied
            | io::ErrorKind::InvalidInput
            | io::ErrorKind::Unsupported
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    #[test]
    fn fs_storage_round_trips() {
        let dir = ScratchDir::new("storage-fs");
        let storage = FsStorage;
        let path = dir.path().join("probe.bin");
        let mut file = storage.open_append(&path).unwrap();
        file.append(b"hello ").unwrap();
        file.append(b"world").unwrap();
        file.sync().unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"hello world");
        file.truncate(5).unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"hello");
        let renamed = dir.path().join("renamed.bin");
        storage.rename(&path, &renamed).unwrap();
        storage.sync_dir(dir.path()).unwrap();
        assert!(storage
            .list_dir(dir.path())
            .unwrap()
            .contains(&"renamed.bin".to_owned()));
        storage.remove_file(&renamed).unwrap();
        assert!(storage.list_dir(dir.path()).unwrap().is_empty());
    }

    #[test]
    fn scheduled_fault_fires_once_and_op_is_skipped() {
        let dir = ScratchDir::new("storage-once");
        let faulty = FaultyStorage::over_fs();
        faulty.schedule(Fault::nth_of(
            FaultOp::Append,
            1,
            FaultKind::Error(io::ErrorKind::Interrupted),
        ));
        let path = dir.path().join("f.bin");
        let mut file = faulty.open_append(&path).unwrap();
        file.append(b"aa").unwrap();
        let err = file.append(b"bb").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        file.append(b"cc").unwrap();
        // The faulted append wrote nothing.
        assert_eq!(faulty.read(&path).unwrap(), b"aacc");
        assert_eq!(faulty.faults_fired(), 1);
    }

    #[test]
    fn short_write_tears_real_bytes() {
        let dir = ScratchDir::new("storage-short");
        let faulty = FaultyStorage::over_fs();
        faulty.schedule(Fault::nth_of(FaultOp::Append, 0, FaultKind::ShortWrite));
        let path = dir.path().join("f.bin");
        let mut file = faulty.open_append(&path).unwrap();
        let err = file.append(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(faulty.read(&path).unwrap(), b"01234", "half landed");
        file.truncate(0).unwrap();
        assert_eq!(faulty.read(&path).unwrap(), b"");
    }

    #[test]
    fn outage_fails_everything_until_heal() {
        let dir = ScratchDir::new("storage-outage");
        let faulty = FaultyStorage::over_fs();
        let path = dir.path().join("f.bin");
        let mut file = faulty.open_append(&path).unwrap();
        file.append(b"durable").unwrap();
        faulty.outage_now(io::ErrorKind::Other);
        assert!(file.append(b"lost").is_err());
        assert!(file.sync().is_err());
        assert!(faulty.read(&path).is_err());
        assert!(faulty.sync_dir(dir.path()).is_err());
        assert!(faulty.is_down());
        faulty.heal();
        file.append(b" again").unwrap();
        assert_eq!(faulty.read(&path).unwrap(), b"durable again");
    }

    #[test]
    fn periodic_drizzle_hits_every_period() {
        let dir = ScratchDir::new("storage-periodic");
        let faulty = FaultyStorage::over_fs();
        faulty.every(3, io::ErrorKind::Interrupted);
        let path = dir.path().join("f.bin");
        let mut file = faulty.open_append(&path).unwrap(); // op 0
        let mut failures = 0;
        for _ in 0..8 {
            if file.append(b"x").is_err() {
                failures += 1;
            }
        }
        // Ops 0..=8; ops 2, 5, 8 fail: open was op 0, so appends at
        // global indexes 2, 5, 8 are the 2nd, 5th and 8th append.
        assert_eq!(failures, 3);
        assert_eq!(faulty.faults_fired(), 3);
    }

    #[test]
    fn classification_separates_structural_from_transient() {
        for kind in [
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::InvalidInput,
            io::ErrorKind::Unsupported,
        ] {
            assert!(is_fail_fast(&io::Error::new(kind, "x")), "{kind:?}");
        }
        for kind in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
            io::ErrorKind::StorageFull,
            io::ErrorKind::Other,
        ] {
            assert!(!is_fail_fast(&io::Error::new(kind, "x")), "{kind:?}");
        }
    }
}
