//! Self-cleaning scratch directories for durable state in tests, benches,
//! and examples.
//!
//! Everything durable needs a directory; nothing in this repo's test suite
//! may leave one behind. [`ScratchDir`] creates a uniquely named directory
//! under the system temp root and removes it (recursively, best-effort) on
//! drop — the vendored shims include no tempdir crate, and this is all the
//! crate needs from one.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static SCRATCH_SERIAL: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temporary directory, deleted on drop.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Creates `<tmp>/wft-<label>-<pid>-<serial>-<nanos>`. The pid keeps
    /// concurrent test processes apart, the serial keeps threads within a
    /// process apart, and the wall-clock nanos keep reruns apart from any
    /// undeleted debris of a killed predecessor.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created — scratch space is a
    /// test-harness precondition, not a recoverable condition.
    pub fn new(label: &str) -> Self {
        let serial = SCRATCH_SERIAL.fetch_add(1, Ordering::Relaxed);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "wft-{label}-{pid}-{serial}-{nanos}",
            pid = std::process::id()
        ));
        std::fs::create_dir_all(&path).expect("creating scratch directory");
        ScratchDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        // Best-effort: a failed cleanup (e.g. a file held open on an
        // exotic filesystem) must not turn a passing test into a panic
        // during unwind.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_unique_and_cleaned() {
        let a = ScratchDir::new("scratch");
        let b = ScratchDir::new("scratch");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        std::fs::write(a.path().join("junk"), b"x").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "drop removes the tree");
        assert!(b.path().is_dir(), "other dirs untouched");
    }
}
