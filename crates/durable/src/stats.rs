//! Instrumentation for the durable layer: lock-free counters and latency
//! histograms, mirrored into the `wft-obs` vocabulary.
//!
//! [`DurableInstruments`] is the live set of atomics the journal and
//! checkpointing code touch; [`DurableStats`] is a consistent-enough
//! point-in-time copy for direct assertions (the counters are independent
//! relaxed atomics — exact equalities hold at quiescence, which is how the
//! examples and tests use them). The `MetricsSource` impl on
//! `crate::DurableStore` reads the *same* cells, so the registry view and
//! the struct view can never drift.

use std::sync::atomic::{AtomicU64, Ordering};

use wft_obs::{HistogramSnapshot, LatencyHistogram};

/// Live counters and histograms for one durable store.
#[derive(Debug, Default)]
pub(crate) struct DurableInstruments {
    /// Batches appended to the WAL (one record each).
    pub(crate) wal_appends: AtomicU64,
    /// `fsync` calls on WAL segments (one per commit group when fsync is
    /// enabled).
    pub(crate) wal_fsyncs: AtomicU64,
    /// Writers that rode a group another writer's fsync paid for: for each
    /// group of `g > 1` coalesced batches, `g - 1` stalls.
    pub(crate) wal_stalls: AtomicU64,
    /// Frame bytes (headers + payloads) appended to the WAL.
    pub(crate) wal_bytes: AtomicU64,
    /// Segment rotations (size-triggered and checkpoint-triggered).
    pub(crate) wal_rotations: AtomicU64,
    /// Checkpoints taken successfully.
    pub(crate) checkpoints: AtomicU64,
    /// WAL segments deleted by checkpoint truncation.
    pub(crate) segments_truncated: AtomicU64,
    /// Flush attempts retried after a transient I/O error (backoff path).
    pub(crate) io_retries: AtomicU64,
    /// Times the journal escalated a persistent failure into degraded
    /// read-only mode.
    pub(crate) degraded_entries: AtomicU64,
    /// Successful `try_resume` calls (degraded → running transitions).
    pub(crate) resumes: AtomicU64,
    /// Checkpoints triggered by the background policy rather than an
    /// explicit call.
    pub(crate) auto_checkpoints: AtomicU64,
    /// Gauge: 1 while the journal is in degraded read-only mode, else 0.
    pub(crate) degraded: AtomicU64,
    /// Per-batch commit latency: submit to durable-and-applied, in
    /// nanoseconds.
    pub(crate) commit_latency: LatencyHistogram,
    /// Commit group sizes (batches per fsync), recorded as raw counts in
    /// the histogram's log-spaced buckets.
    pub(crate) group_size: LatencyHistogram,
    /// Wall-clock duration of each checkpoint, in nanoseconds.
    pub(crate) checkpoint_duration: LatencyHistogram,
}

/// A point-in-time copy of a store's durable instrumentation.
#[derive(Debug, Clone)]
pub struct DurableStats {
    /// Batches appended to the WAL.
    pub wal_appends: u64,
    /// `fsync` calls on WAL segments.
    pub wal_fsyncs: u64,
    /// Writers released by a group they did not fsync themselves.
    pub wal_stalls: u64,
    /// Frame bytes appended to the WAL.
    pub wal_bytes: u64,
    /// Segment rotations.
    pub wal_rotations: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Segments deleted by truncation.
    pub segments_truncated: u64,
    /// Flush attempts retried after a transient I/O error.
    pub io_retries: u64,
    /// Escalations into degraded read-only mode.
    pub degraded_entries: u64,
    /// Successful resumes out of degraded mode.
    pub resumes: u64,
    /// Checkpoints triggered by the background policy.
    pub auto_checkpoints: u64,
    /// 1 while the journal is degraded, else 0.
    pub degraded: u64,
    /// Highest sequence number made durable (fsynced).
    pub durable_seq: u64,
    /// Highest sequence number applied to the in-memory store.
    pub applied_seq: u64,
    /// Commit latency distribution (ns).
    pub commit_latency: HistogramSnapshot,
    /// Commit group size distribution (batches per group).
    pub group_size: HistogramSnapshot,
    /// Checkpoint duration distribution (ns).
    pub checkpoint_duration: HistogramSnapshot,
}

impl DurableInstruments {
    /// Snapshots every instrument. `durable_seq` / `applied_seq` live on
    /// the journal, so the caller passes them in.
    pub(crate) fn stats(&self, durable_seq: u64, applied_seq: u64) -> DurableStats {
        DurableStats {
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            wal_stalls: self.wal_stalls.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_rotations: self.wal_rotations.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            segments_truncated: self.segments_truncated.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            degraded_entries: self.degraded_entries.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
            auto_checkpoints: self.auto_checkpoints.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            durable_seq,
            applied_seq,
            commit_latency: self.commit_latency.snapshot(),
            group_size: self.group_size.snapshot(),
            checkpoint_duration: self.checkpoint_duration.snapshot(),
        }
    }
}
