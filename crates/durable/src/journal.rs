//! The group-commit journal: a dedicated log thread that coalesces
//! concurrent batches into single WAL writes, applies them in sequence
//! order, and absorbs I/O failures through retry, degradation, and
//! resume instead of crash-halting.
//!
//! # Protocol
//!
//! Writers [`submit`](Journal::submit) a validated batch and block on a
//! per-batch slot. The log thread drains the whole queue as one **commit
//! group**, **resolves** every logical operation (`Patch` /
//! `CompareAndSet` / `Get`) into its physical effect against the store
//! plus a group-spanning overlay (see [`resolve_group`] — physical
//! logging), appends every record with one `write`, fsyncs once, then
//! applies each batch to the in-memory store *in sequence order* and fills
//! the slots with the typed outcomes. Two invariants fall out:
//!
//! - **Durability before visibility.** A batch touches the store only
//!   after its record is on stable storage, so no read (point, range, or
//!   snapshot cursor) ever observes state that a crash could roll back,
//!   and the in-memory store always equals a replay of the WAL's committed
//!   prefix.
//! - **One fsync pays for the whole group.** Under contention, `g` writers
//!   share one `write` + `fsync`; the `g - 1` that did not trigger it are
//!   counted as `wal_stalls` and announced with a single
//!   [`TraceKind::WalStall`] event carrying the group size — the
//!   group-commit analogue of the helping the wait-free tree's root queue
//!   does for updates.
//!
//! Applying serially on the log thread is deliberate: it makes the WAL's
//! total order *the* commit order, which recovery can replay without any
//! cross-batch coordination. The store underneath is concurrent, but
//! durability funnels writes through one sequencer — readers stay as
//! parallel as ever.
//!
//! # Failure policy
//!
//! A flush failure no longer kills the store. Each commit-group flush is
//! a retry loop: roll the segment tail back to the durable watermark
//! (erasing any torn bytes so retried records reuse their sequence
//! numbers — see `crate::wal`), re-append, re-sync. Transient errors
//! (`EINTR`, `ENOSPC`, `EIO`, timeouts — anything
//! [`crate::storage::is_fail_fast`] does not reject) consume the
//! [`RetryPolicy`] budget with capped exponential backoff, each attempt
//! counted in `durable_io_retries` and announced as
//! [`TraceKind::IoRetry`]. Structural errors (path gone, permission
//! denied) and an exhausted budget escalate per [`Escalation`]:
//!
//! - [`Escalation::Degrade`] (default): the journal enters **degraded
//!   read-only mode**. The failed group and everything queued fail with
//!   [`DurableError::Degraded`]; *nothing unacknowledged was applied*, so
//!   the in-memory store still equals the WAL's durable prefix and reads
//!   keep serving it. [`Journal::try_resume`] re-probes storage with a
//!   genuine write (rollback + segment rotation) and re-arms the log
//!   thread on success.
//! - [`Escalation::Halt`]: the pre-fault-policy behaviour — the journal
//!   halts for good with [`HaltReason::Io`].
//!
//! # Halting
//!
//! [`HaltMode::Graceful`] drains the queue before the thread exits (used
//! by `shutdown` and drop) and surfaces as [`HaltReason::Shutdown`].
//! [`HaltMode::Crash`] abandons the queue — unacknowledged batches fail
//! with [`DurableError::Halted`] and their records may or may not be on
//! disk, exactly the ambiguity a real crash leaves
//! ([`HaltReason::Crash`]).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wft_api::{resolve_op, OpOutcome, StoreOp};
use wft_obs::TraceKind;
use wft_seq::{Augmentation, Key, Value};
use wft_store::ShardedStore;

use crate::codec::WalCodec;
use crate::stats::DurableInstruments;
use crate::storage::is_fail_fast;
use crate::wal::WalWriter;
use crate::DurableError;

/// Why the journal stopped accepting writes for good.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// Graceful shutdown: every queued batch was flushed and applied
    /// before the log thread exited.
    Shutdown,
    /// A crash (real or [`crate::DurableStore::simulate_crash`]):
    /// queued, unacknowledged batches were abandoned mid-flight.
    Crash,
    /// A persistent I/O failure under [`Escalation::Halt`] — the
    /// storage died and the configuration chose stopping over degrading.
    Io,
}

impl std::fmt::Display for HaltReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HaltReason::Shutdown => write!(f, "graceful shutdown"),
            HaltReason::Crash => write!(f, "crash"),
            HaltReason::Io => write!(f, "unrecoverable I/O failure"),
        }
    }
}

/// How the journal stops (the caller-facing verb; the surfaced noun is
/// [`HaltReason`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HaltMode {
    /// Flush and apply everything queued, then exit.
    Graceful,
    /// Exit now; fail queued batches with [`DurableError::Halted`].
    Crash,
}

/// Retry budget for transient I/O errors on the flush path.
///
/// Attempt `i` (0-based) sleeps `min(base_backoff << i, max_backoff)`
/// before retrying. With the defaults (6 retries, 1 ms base, 64 ms cap)
/// a group rides out ~127 ms of storage hiccup before escalating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = escalate immediately).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(64),
        }
    }
}

impl RetryPolicy {
    /// The sleep before 0-based retry `attempt`.
    pub(crate) fn backoff_for(&self, attempt: u32) -> Duration {
        self.base_backoff
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX))
            .min(self.max_backoff)
    }
}

/// What a persistent flush failure escalates into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Escalation {
    /// Enter degraded read-only mode: reads keep serving, writes fail
    /// fast with [`DurableError::Degraded`], and
    /// [`crate::DurableStore::try_resume`] can restore service.
    #[default]
    Degrade,
    /// Halt the journal for good with [`HaltReason::Io`] (the
    /// pre-fault-policy behaviour).
    Halt,
}

/// A submitted batch waiting for its commit group.
struct Pending<K: Key, V: Value> {
    ops: Vec<StoreOp<K, V>>,
    slot: Arc<Slot<V>>,
}

/// A batch after the log thread's resolution pass: the *physical* ops the
/// WAL records and the store applies, plus the outcomes (one per submitted
/// op, in submission order) the writer's slot is filled with once the
/// group is durable and applied.
struct Resolved<K: Key, V: Value> {
    physical: Vec<StoreOp<K, V>>,
    outcomes: Vec<OpOutcome<V>>,
    slot: Arc<Slot<V>>,
}

/// Resolves a commit group's logical operations (`Patch`,
/// `CompareAndSet`, `Get`) into their physical effects — **physical
/// logging**. The log thread is the store's sole mutator (application
/// happens only under `apply_gate`, checkpoints only read), so a
/// shadow-resolution against the live store, layered with a group-wide
/// overlay that carries each key's post-value from batch to batch, sees
/// exactly the state each op will execute against. Classic ops resolve to
/// themselves byte-for-byte, so a WAL stream without logical ops is
/// unchanged by this pass; `Get`s and missed `CompareAndSet`s produce no
/// physical op at all (an all-read batch still appends an *empty* record,
/// keeping WAL sequence numbers contiguous with acknowledgements).
fn resolve_group<K, V, A>(
    store: &ShardedStore<K, V, A>,
    group: Vec<Pending<K, V>>,
) -> Vec<Resolved<K, V>>
where
    K: Key,
    V: Value,
    A: Augmentation<K, V>,
{
    let mut overlay: HashMap<K, Option<V>> = HashMap::new();
    group
        .into_iter()
        .map(|pending| {
            let mut physical = Vec::with_capacity(pending.ops.len());
            let mut outcomes = Vec::with_capacity(pending.ops.len());
            for op in &pending.ops {
                let key = *op.key();
                let current = match overlay.get(&key) {
                    Some(shadowed) => shadowed.clone(),
                    None => store.get(&key),
                };
                let resolved = resolve_op(op, current);
                overlay.insert(key, resolved.after);
                physical.extend(resolved.physical);
                outcomes.push(resolved.outcome);
            }
            Resolved {
                physical,
                outcomes,
                slot: pending.slot,
            }
        })
        .collect()
}

/// The rendezvous a writer blocks on until its batch is durable and
/// applied.
struct Slot<V: Value> {
    state: Mutex<Option<Result<Vec<OpOutcome<V>>, DurableError>>>,
    ready: Condvar,
}

impl<V: Value> Slot<V> {
    fn new() -> Self {
        Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, result: Result<Vec<OpOutcome<V>>, DurableError>) {
        *self.state.lock().unwrap() = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Vec<OpOutcome<V>>, DurableError> {
        let mut state = self.state.lock().unwrap();
        loop {
            match state.take() {
                Some(result) => return result,
                None => state = self.ready.wait(state).unwrap(),
            }
        }
    }
}

/// The journal's lifecycle state, guarded by the queue lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum JournalState {
    /// Accepting and flushing batches.
    Running,
    /// A persistent I/O failure stopped the log thread; the message is
    /// the escalating error. Writes fail fast; `try_resume` may recover.
    Degraded(String),
    /// Stopped for good.
    Halted(HaltReason),
}

struct Queue<K: Key, V: Value> {
    pending: VecDeque<Pending<K, V>>,
    state: JournalState,
}

/// State shared between writers, the log thread, and checkpointing.
pub(crate) struct Shared<K: Key, V: Value> {
    /// The segment writer. Checkpointing locks this for rotation and
    /// truncation, so segment surgery never interleaves with a group
    /// append.
    pub(crate) wal: Mutex<WalWriter>,
    /// Held by the log thread around each group's apply stage. The
    /// in-memory store is mutated *only* under this lock, so a checkpoint
    /// that cannot win an online snapshot drain (sustained write pressure
    /// on few cores) can take it and read a guaranteed-quiescent store:
    /// WAL appends and fsyncs keep running — only application (and hence
    /// acknowledgement) defers, and the backlog lands as one large commit
    /// group when the gate releases. Never held together with `wal` or
    /// the queue lock by either side, so no ordering cycle exists.
    pub(crate) apply_gate: Mutex<()>,
    queue: Mutex<Queue<K, V>>,
    work: Condvar,
    /// Highest sequence number fsynced to the WAL.
    pub(crate) durable_seq: AtomicU64,
    /// Highest sequence number applied to the in-memory store. Always
    /// `<= durable_seq`: apply happens strictly after the group's fsync.
    pub(crate) applied_seq: AtomicU64,
    /// Approximate live (not yet checkpoint-truncated) WAL bytes: grown
    /// by the log thread after each flush, reset by checkpointing. Feeds
    /// the background checkpoint policy; approximate because recovery
    /// seeds it from the replayed suffix and truncation resets it to the
    /// active segment's contribution only coarsely.
    pub(crate) live_wal_bytes: AtomicU64,
    /// Approximate live WAL segment count (same lifecycle as
    /// `live_wal_bytes`).
    pub(crate) live_wal_segments: AtomicU64,
    pub(crate) instruments: Arc<DurableInstruments>,
    retry: RetryPolicy,
    escalation: Escalation,
    fsync: bool,
}

/// Handle owning the log thread.
pub(crate) struct Journal<K: Key, V: Value, A: Augmentation<K, V>> {
    shared: Arc<Shared<K, V>>,
    /// Kept so `try_resume` can respawn the log thread.
    store: Arc<ShardedStore<K, V, A>>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl<K, V, A> Journal<K, V, A>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    /// Spawns the log thread over `wal`, applying committed batches to
    /// `store`. `recovered_through` seeds the durable/applied watermarks
    /// (the WAL prefix recovery already replayed); `live_wal` seeds the
    /// checkpoint policy's byte/segment counters with what recovery left
    /// on disk.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        store: Arc<ShardedStore<K, V, A>>,
        wal: WalWriter,
        instruments: Arc<DurableInstruments>,
        recovered_through: u64,
        live_wal: (u64, u64),
        retry: RetryPolicy,
        escalation: Escalation,
        fsync: bool,
    ) -> Self {
        let shared = Arc::new(Shared {
            wal: Mutex::new(wal),
            apply_gate: Mutex::new(()),
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                state: JournalState::Running,
            }),
            work: Condvar::new(),
            durable_seq: AtomicU64::new(recovered_through),
            applied_seq: AtomicU64::new(recovered_through),
            live_wal_bytes: AtomicU64::new(live_wal.0),
            live_wal_segments: AtomicU64::new(live_wal.1),
            instruments,
            retry,
            escalation,
            fsync,
        });
        let handle = spawn_log_thread(&shared, &store);
        Journal {
            shared,
            store,
            thread: Mutex::new(Some(handle)),
        }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared<K, V>> {
        &self.shared
    }

    /// Queues a batch for the next commit group and blocks until it is
    /// durable and applied (or the journal degraded / halted). The batch
    /// must already be validated — the log thread trusts it.
    pub(crate) fn submit(
        &self,
        ops: Vec<StoreOp<K, V>>,
    ) -> Result<Vec<OpOutcome<V>>, DurableError> {
        let started = Instant::now();
        let slot = Arc::new(Slot::new());
        {
            let mut queue = self.shared.queue.lock().unwrap();
            match &queue.state {
                JournalState::Running => {}
                JournalState::Degraded(msg) => return Err(DurableError::Degraded(msg.clone())),
                JournalState::Halted(reason) => return Err(DurableError::Halted(*reason)),
            }
            queue.pending.push_back(Pending {
                ops,
                slot: Arc::clone(&slot),
            });
            self.shared.work.notify_one();
        }
        let result = slot.wait();
        if result.is_ok() {
            self.shared
                .instruments
                .commit_latency
                .record(started.elapsed().as_nanos() as u64);
        }
        result
    }

    /// A snapshot of the journal's lifecycle state.
    pub(crate) fn state(&self) -> JournalState {
        self.shared.queue.lock().unwrap().state.clone()
    }

    /// `true` once the journal stopped accepting batches for good.
    pub(crate) fn is_halted(&self) -> bool {
        matches!(self.state(), JournalState::Halted(_))
    }

    /// `true` while the journal is in degraded read-only mode.
    pub(crate) fn is_degraded(&self) -> bool {
        matches!(self.state(), JournalState::Degraded(_))
    }

    /// Attempts to leave degraded mode: joins the dead log thread, probes
    /// storage with a *genuine* write (tail rollback + rotation into a
    /// fresh fsynced segment), and respawns the thread on success.
    ///
    /// Returns `Ok(true)` when the journal transitioned back to running,
    /// `Ok(false)` when it was already running, `Err(Halted)` when it is
    /// past saving, and `Err(Io)` when the probe found the storage still
    /// dead (the journal stays degraded; call again later).
    pub(crate) fn try_resume(&self) -> Result<bool, DurableError> {
        // The thread-handle lock serialises concurrent resume attempts.
        let mut thread = self.thread.lock().unwrap();
        {
            let queue = self.shared.queue.lock().unwrap();
            match &queue.state {
                JournalState::Running => return Ok(false),
                JournalState::Halted(reason) => return Err(DurableError::Halted(*reason)),
                JournalState::Degraded(_) => {}
            }
        }
        if let Some(handle) = thread.take() {
            let _ = handle.join();
        }

        // Probe with the same operations the flush path needs: erase any
        // torn tail, then rotate — which syncs the old segment, creates a
        // new one, and fsyncs the directory. If any of that still fails,
        // stay degraded.
        {
            let mut wal = self.shared.wal.lock().unwrap();
            wal.rollback_tail().map_err(DurableError::io)?;
            wal.rotate().map_err(DurableError::io)?;
        }
        let instruments = &self.shared.instruments;
        instruments.wal_rotations.fetch_add(1, Ordering::Relaxed);
        self.shared
            .live_wal_segments
            .fetch_add(1, Ordering::Relaxed);

        self.shared.queue.lock().unwrap().state = JournalState::Running;
        let resumes = instruments.resumes.fetch_add(1, Ordering::Relaxed) + 1;
        instruments.degraded.store(0, Ordering::Relaxed);
        wft_obs::trace::emit(TraceKind::DegradedResume, (resumes & 0xFFFF) as u16);
        *thread = Some(spawn_log_thread(&self.shared, &self.store));
        Ok(true)
    }

    /// Stops the log thread and joins it. Idempotent; a `Crash` is never
    /// downgraded to `Graceful` by a later call. Halting a degraded
    /// journal finalises it (the thread is already gone).
    pub(crate) fn halt(&self, mode: HaltMode) {
        let reason = match mode {
            HaltMode::Graceful => HaltReason::Shutdown,
            HaltMode::Crash => HaltReason::Crash,
        };
        {
            let mut queue = self.shared.queue.lock().unwrap();
            match (&queue.state, mode) {
                (JournalState::Running, _) | (JournalState::Degraded(_), _) => {
                    if matches!(queue.state, JournalState::Degraded(_)) {
                        self.shared.instruments.degraded.store(0, Ordering::Relaxed);
                        // The thread is dead; nothing will drain the queue
                        // (degraded mode already failed everything, but a
                        // submit racing the transition could be parked).
                        for pending in queue.pending.drain(..) {
                            pending.slot.fill(Err(DurableError::Halted(reason)));
                        }
                    }
                    queue.state = JournalState::Halted(reason);
                }
                (JournalState::Halted(HaltReason::Shutdown), HaltMode::Crash) => {
                    queue.state = JournalState::Halted(HaltReason::Crash);
                }
                (JournalState::Halted(_), _) => {}
            }
            self.shared.work.notify_one();
        }
        if let Some(handle) = self.thread.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl<K: Key, V: Value, A: Augmentation<K, V>> Drop for Journal<K, V, A> {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            if matches!(queue.state, JournalState::Running) {
                queue.state = JournalState::Halted(HaltReason::Shutdown);
            }
            self.shared.work.notify_one();
        }
        if let Some(handle) = self.thread.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

fn spawn_log_thread<K, V, A>(
    shared: &Arc<Shared<K, V>>,
    store: &Arc<ShardedStore<K, V, A>>,
) -> JoinHandle<()>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    let shared = Arc::clone(shared);
    let store = Arc::clone(store);
    std::thread::Builder::new()
        .name("wft-durable-log".into())
        // Startup-only: failing to spawn the log thread means the store cannot
        // exist at all — propagating a StoreError has no caller to degrade to.
        // wft-lint: allow(forbidden-api) -- not journal I/O; spawn failure at construction must fail fast.
        .spawn(move || run(shared, store))
        .expect("spawning the durable log thread")
}

/// The log thread body: wait for work, commit a group (with retries),
/// apply it, repeat — until halted or escalated.
fn run<K, V, A>(shared: Arc<Shared<K, V>>, store: Arc<ShardedStore<K, V, A>>)
where
    K: Key + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    loop {
        // Collect the next commit group (everything queued right now).
        let group: Vec<Pending<K, V>> = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                let empty = queue.pending.is_empty();
                match (&queue.state, empty) {
                    (JournalState::Halted(HaltReason::Shutdown), true) => return,
                    // Graceful halt with work queued: drain it below.
                    (JournalState::Halted(HaltReason::Shutdown), false) => break,
                    (JournalState::Halted(reason), _) => {
                        let reason = *reason;
                        for pending in queue.pending.drain(..) {
                            pending.slot.fill(Err(DurableError::Halted(reason)));
                        }
                        return;
                    }
                    // Degraded is set by this thread on its way out; a
                    // fresh thread never observes it.
                    (JournalState::Degraded(msg), _) => {
                        let err = DurableError::Degraded(msg.clone());
                        for pending in queue.pending.drain(..) {
                            pending.slot.fill(Err(err.clone()));
                        }
                        return;
                    }
                    (JournalState::Running, true) => queue = shared.work.wait(queue).unwrap(),
                    (JournalState::Running, false) => break,
                }
            }
            queue.pending.drain(..).collect()
        };

        // Resolve logical ops to physical effects *before* any byte is
        // encoded: the WAL stores physical ops only (see `resolve_group`).
        let group = resolve_group(&store, group);

        let (first_seq, bytes) = match flush_group(&shared, &group) {
            Ok(out) => out,
            Err(err) => {
                escalate(&shared, group, &err);
                return;
            }
        };

        let group_size = group.len() as u64;
        let instruments = &shared.instruments;
        instruments
            .wal_appends
            .fetch_add(group_size, Ordering::Relaxed);
        instruments.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        shared.live_wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        if shared.fsync {
            instruments.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        instruments.group_size.record(group_size);
        if group_size > 1 {
            instruments
                .wal_stalls
                .fetch_add(group_size - 1, Ordering::Relaxed);
            wft_obs::trace::emit(TraceKind::WalStall, (group_size & 0xFFFF) as u16);
        }
        // ORDERING: Release publishes the group's WAL durability (and the fsynced
        // bytes behind it) to the Acquire `durable_seq` reads in stats.
        shared
            .durable_seq
            .store(first_seq + group_size - 1, Ordering::Release);

        // Durable; now apply in sequence order and release the writers.
        // The gate is what a starved checkpoint grabs to quiesce the
        // store — nothing else ever mutates it.
        let _applying = shared.apply_gate.lock().unwrap();
        for (i, resolved) in group.into_iter().enumerate() {
            // Resolution already computed every outcome; the store only
            // needs the physical effects (none at all for a pure-read or
            // all-missed batch). The resolution is authoritative because
            // nothing mutated the store since — this thread is the sole
            // mutator.
            let outcome = if resolved.physical.is_empty() {
                Ok(resolved.outcomes)
            } else {
                store
                    .apply_batch(resolved.physical)
                    .map(|_| resolved.outcomes)
                    .map_err(|err| DurableError::Batch(err.to_string()))
            };
            // ORDERING: Release publishes the applied effects to the Acquire
            // `applied_seq` reads (checkpoint cut, stats).
            shared
                .applied_seq
                .store(first_seq + i as u64, Ordering::Release);
            resolved.slot.fill(outcome);
        }
    }
}

/// Flushes one commit group durably, retrying transient I/O errors with
/// capped exponential backoff. Every attempt starts by rolling the
/// segment tail back to the durable watermark, so a torn previous attempt
/// never leaves readable frames whose sequence numbers the retry reuses.
fn flush_group<K, V>(shared: &Shared<K, V>, group: &[Resolved<K, V>]) -> std::io::Result<(u64, u64)>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    // Physical ops only — resolution already ran. An empty slice still
    // appends a record so sequence numbers stay contiguous.
    let slices: Vec<&[StoreOp<K, V>]> = group.iter().map(|r| r.physical.as_slice()).collect();
    let mut attempt: u32 = 0;
    loop {
        let result = {
            let mut wal = shared.wal.lock().unwrap();
            wal.rollback_tail()
                .and_then(|()| wal.append_group(&slices))
                .and_then(|out| {
                    if shared.fsync {
                        wal.sync()?;
                    } else {
                        wal.commit_volatile();
                    }
                    Ok(out)
                })
        };
        match result {
            Ok(out) => {
                // Rotation is best-effort: the group is already durable,
                // so a failure here just postpones the segment break to
                // the next group's flush.
                let mut wal = shared.wal.lock().unwrap();
                if wal.wants_rotation() {
                    match wal.rotate() {
                        Ok(()) => {
                            shared
                                .instruments
                                .wal_rotations
                                .fetch_add(1, Ordering::Relaxed);
                            shared.live_wal_segments.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            shared
                                .instruments
                                .io_retries
                                .fetch_add(1, Ordering::Relaxed);
                            wft_obs::trace::emit(TraceKind::IoRetry, 0);
                        }
                    }
                }
                return Ok(out);
            }
            Err(err) if !is_fail_fast(&err) && attempt < shared.retry.attempts => {
                shared
                    .instruments
                    .io_retries
                    .fetch_add(1, Ordering::Relaxed);
                wft_obs::trace::emit(TraceKind::IoRetry, (attempt & 0xFFFF) as u16);
                std::thread::sleep(shared.retry.backoff_for(attempt));
                attempt += 1;
            }
            Err(err) => return Err(err),
        }
    }
}

/// The retry budget is spent (or the error was structural): fail the
/// in-flight group and everything queued, then either degrade or halt per
/// the configured [`Escalation`]. Runs on the log thread, which exits
/// right after.
fn escalate<K, V>(shared: &Shared<K, V>, group: Vec<Resolved<K, V>>, err: &std::io::Error)
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    let msg = err.to_string();
    let (group_err, state) = match shared.escalation {
        Escalation::Degrade => (
            DurableError::Degraded(msg.clone()),
            JournalState::Degraded(msg),
        ),
        Escalation::Halt => (DurableError::Io(msg), JournalState::Halted(HaltReason::Io)),
    };
    // Publish the state *before* releasing any waiter: a writer that
    // wakes up with a Degraded error must already observe
    // `is_degraded()`.
    {
        let mut queue = shared.queue.lock().unwrap();
        let queued_err = match &state {
            JournalState::Degraded(m) => DurableError::Degraded(m.clone()),
            _ => DurableError::Halted(HaltReason::Io),
        };
        for pending in queue.pending.drain(..) {
            pending.slot.fill(Err(queued_err.clone()));
        }
        if matches!(state, JournalState::Degraded(_)) {
            shared
                .instruments
                .degraded_entries
                .fetch_add(1, Ordering::Relaxed);
            shared.instruments.degraded.store(1, Ordering::Relaxed);
            wft_obs::trace::emit(TraceKind::DegradedEnter, 0);
        }
        queue.state = state;
    }
    // Nothing in this group (or behind it) was applied: the in-memory
    // store still equals the durable WAL prefix, which is what makes
    // degraded *reads* trustworthy.
    for resolved in group {
        resolved.slot.fill(Err(group_err.clone()));
    }
}
