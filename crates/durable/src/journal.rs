//! The group-commit journal: a dedicated log thread that coalesces
//! concurrent batches into single WAL writes and applies them in sequence
//! order.
//!
//! # Protocol
//!
//! Writers [`submit`](Journal::submit) a validated batch and block on a
//! per-batch slot. The log thread drains the whole queue as one **commit
//! group**, appends every record with one `write`, fsyncs once, then
//! applies each batch to the in-memory store *in sequence order* and fills
//! the slots with the typed outcomes. Two invariants fall out:
//!
//! - **Durability before visibility.** A batch touches the store only
//!   after its record is on stable storage, so no read (point, range, or
//!   snapshot cursor) ever observes state that a crash could roll back,
//!   and the in-memory store always equals a replay of the WAL's committed
//!   prefix.
//! - **One fsync pays for the whole group.** Under contention, `g` writers
//!   share one `write` + `fsync`; the `g - 1` that did not trigger it are
//!   counted as `wal_stalls` and announced with a single
//!   [`TraceKind::WalStall`] event carrying the group size — the
//!   group-commit analogue of the helping the wait-free tree's root queue
//!   does for updates.
//!
//! Applying serially on the log thread is deliberate: it makes the WAL's
//! total order *the* commit order, which recovery can replay without any
//! cross-batch coordination. The store underneath is concurrent, but
//! durability funnels writes through one sequencer — readers stay as
//! parallel as ever.
//!
//! # Halting
//!
//! [`HaltMode::Graceful`] drains the queue before the thread exits (used
//! by `shutdown` and drop). [`HaltMode::Crash`] abandons it — queued,
//! unacknowledged batches fail with [`DurableError::Halted`] and their
//! records may or may not be on disk, exactly the ambiguity a real crash
//! leaves. An I/O error during a flush also crash-halts the journal: a log
//! that cannot persist must stop acknowledging, not limp.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use wft_api::{OpOutcome, StoreOp};
use wft_obs::TraceKind;
use wft_seq::{Augmentation, Key, Value};
use wft_store::ShardedStore;

use crate::codec::WalCodec;
use crate::stats::DurableInstruments;
use crate::wal::WalWriter;
use crate::DurableError;

/// How the journal stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HaltMode {
    /// Flush and apply everything queued, then exit.
    Graceful,
    /// Exit now; fail queued batches with [`DurableError::Halted`].
    Crash,
}

/// A submitted batch waiting for its commit group.
struct Pending<K: Key, V: Value> {
    ops: Vec<StoreOp<K, V>>,
    slot: Arc<Slot<V>>,
}

/// The rendezvous a writer blocks on until its batch is durable and
/// applied.
struct Slot<V: Value> {
    state: Mutex<Option<Result<Vec<OpOutcome<V>>, DurableError>>>,
    ready: Condvar,
}

impl<V: Value> Slot<V> {
    fn new() -> Self {
        Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, result: Result<Vec<OpOutcome<V>>, DurableError>) {
        *self.state.lock().unwrap() = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Vec<OpOutcome<V>>, DurableError> {
        let mut state = self.state.lock().unwrap();
        loop {
            match state.take() {
                Some(result) => return result,
                None => state = self.ready.wait(state).unwrap(),
            }
        }
    }
}

struct Queue<K: Key, V: Value> {
    pending: VecDeque<Pending<K, V>>,
    halt: Option<HaltMode>,
}

/// State shared between writers, the log thread, and checkpointing.
pub(crate) struct Shared<K: Key, V: Value> {
    /// The segment writer. Checkpointing locks this for rotation and
    /// truncation, so segment surgery never interleaves with a group
    /// append.
    pub(crate) wal: Mutex<WalWriter>,
    /// Held by the log thread around each group's apply stage. The
    /// in-memory store is mutated *only* under this lock, so a checkpoint
    /// that cannot win an online snapshot drain (sustained write pressure
    /// on few cores) can take it and read a guaranteed-quiescent store:
    /// WAL appends and fsyncs keep running — only application (and hence
    /// acknowledgement) defers, and the backlog lands as one large commit
    /// group when the gate releases. Never held together with `wal` or
    /// the queue lock by either side, so no ordering cycle exists.
    pub(crate) apply_gate: Mutex<()>,
    queue: Mutex<Queue<K, V>>,
    work: Condvar,
    /// Highest sequence number fsynced to the WAL.
    pub(crate) durable_seq: AtomicU64,
    /// Highest sequence number applied to the in-memory store. Always
    /// `<= durable_seq`: apply happens strictly after the group's fsync.
    pub(crate) applied_seq: AtomicU64,
    pub(crate) instruments: Arc<DurableInstruments>,
    fsync: bool,
}

/// Handle owning the log thread.
pub(crate) struct Journal<K: Key, V: Value> {
    shared: Arc<Shared<K, V>>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl<K, V> Journal<K, V>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    /// Spawns the log thread over `wal`, applying committed batches to
    /// `store`. `recovered_through` seeds the durable/applied watermarks
    /// (the WAL prefix recovery already replayed).
    pub(crate) fn start<A: Augmentation<K, V>>(
        store: Arc<ShardedStore<K, V, A>>,
        wal: WalWriter,
        instruments: Arc<DurableInstruments>,
        recovered_through: u64,
        fsync: bool,
    ) -> Self {
        let shared = Arc::new(Shared {
            wal: Mutex::new(wal),
            apply_gate: Mutex::new(()),
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                halt: None,
            }),
            work: Condvar::new(),
            durable_seq: AtomicU64::new(recovered_through),
            applied_seq: AtomicU64::new(recovered_through),
            instruments,
            fsync,
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("wft-durable-log".into())
            .spawn(move || run(thread_shared, store))
            .expect("spawning the durable log thread");
        Journal {
            shared,
            thread: Mutex::new(Some(handle)),
        }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared<K, V>> {
        &self.shared
    }

    /// Queues a batch for the next commit group and blocks until it is
    /// durable and applied (or the journal halted / failed). The batch
    /// must already be validated — the log thread trusts it.
    pub(crate) fn submit(
        &self,
        ops: Vec<StoreOp<K, V>>,
    ) -> Result<Vec<OpOutcome<V>>, DurableError> {
        let started = Instant::now();
        let slot = Arc::new(Slot::new());
        {
            let mut queue = self.shared.queue.lock().unwrap();
            if queue.halt.is_some() {
                return Err(DurableError::Halted);
            }
            queue.pending.push_back(Pending {
                ops,
                slot: Arc::clone(&slot),
            });
            self.shared.work.notify_one();
        }
        let result = slot.wait();
        if result.is_ok() {
            self.shared
                .instruments
                .commit_latency
                .record(started.elapsed().as_nanos() as u64);
        }
        result
    }

    /// `true` once the journal stopped accepting batches.
    pub(crate) fn is_halted(&self) -> bool {
        self.shared.queue.lock().unwrap().halt.is_some()
    }

    /// Stops the log thread and joins it. Idempotent; a `Crash` is never
    /// downgraded to `Graceful` by a later call.
    pub(crate) fn halt(&self, mode: HaltMode) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            match (queue.halt, mode) {
                (None, _) | (Some(HaltMode::Graceful), HaltMode::Crash) => {
                    queue.halt = Some(mode);
                }
                _ => {}
            }
            self.shared.work.notify_one();
        }
        if let Some(handle) = self.thread.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl<K: Key, V: Value> Drop for Journal<K, V> {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            if queue.halt.is_none() {
                queue.halt = Some(HaltMode::Graceful);
            }
            self.shared.work.notify_one();
        }
        if let Some(handle) = self.thread.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

/// The log thread body: wait for work, commit a group, apply it, repeat.
fn run<K, V, A>(shared: Arc<Shared<K, V>>, store: Arc<ShardedStore<K, V, A>>)
where
    K: Key + WalCodec,
    V: Value + WalCodec,
    A: Augmentation<K, V>,
{
    loop {
        // Collect the next commit group (everything queued right now).
        let group: Vec<Pending<K, V>> = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                match (queue.pending.is_empty(), queue.halt) {
                    (_, Some(HaltMode::Crash)) => {
                        for pending in queue.pending.drain(..) {
                            pending.slot.fill(Err(DurableError::Halted));
                        }
                        return;
                    }
                    (true, Some(HaltMode::Graceful)) => return,
                    (true, None) => queue = shared.work.wait(queue).unwrap(),
                    (false, _) => break,
                }
            }
            queue.pending.drain(..).collect()
        };

        // One write + one fsync for the whole group.
        let flushed = {
            let slices: Vec<&[StoreOp<K, V>]> =
                group.iter().map(|pending| pending.ops.as_slice()).collect();
            let mut wal = shared.wal.lock().unwrap();
            wal.append_group(&slices)
                .and_then(|out| {
                    if shared.fsync {
                        wal.sync()?;
                    }
                    Ok(out)
                })
                .and_then(|out| {
                    if wal.wants_rotation() {
                        wal.rotate()?;
                        shared
                            .instruments
                            .wal_rotations
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(out)
                })
        };

        let (first_seq, bytes) = match flushed {
            Ok(out) => out,
            Err(err) => {
                // A log that cannot persist must stop acknowledging:
                // crash-halt, failing this group and everything queued.
                let err = DurableError::Io(err.to_string());
                for pending in group {
                    pending.slot.fill(Err(err.clone()));
                }
                let mut queue = shared.queue.lock().unwrap();
                queue.halt = Some(HaltMode::Crash);
                for pending in queue.pending.drain(..) {
                    pending.slot.fill(Err(DurableError::Halted));
                }
                return;
            }
        };

        let group_size = group.len() as u64;
        let instruments = &shared.instruments;
        instruments
            .wal_appends
            .fetch_add(group_size, Ordering::Relaxed);
        instruments.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        if shared.fsync {
            instruments.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        instruments.group_size.record(group_size);
        if group_size > 1 {
            instruments
                .wal_stalls
                .fetch_add(group_size - 1, Ordering::Relaxed);
            wft_obs::trace::emit(TraceKind::WalStall, (group_size & 0xFFFF) as u16);
        }
        shared
            .durable_seq
            .store(first_seq + group_size - 1, Ordering::Release);

        // Durable; now apply in sequence order and release the writers.
        // The gate is what a starved checkpoint grabs to quiesce the
        // store — nothing else ever mutates it.
        let _applying = shared.apply_gate.lock().unwrap();
        for (i, pending) in group.into_iter().enumerate() {
            let outcome = store
                .apply_batch(pending.ops)
                .map_err(|err| DurableError::Batch(err.to_string()));
            shared
                .applied_seq
                .store(first_seq + i as u64, Ordering::Release);
            pending.slot.fill(outcome);
        }
    }
}
