//! Byte-level encoding for write-ahead log and checkpoint payloads.
//!
//! Durability serialises two things: [`StoreOp`] batches into WAL records,
//! and `(key, value)` entries into checkpoint images. Both go through
//! [`WalCodec`], a deliberately tiny fixed-layout codec (little-endian
//! scalars, no schema, no varints) so that a frame's byte length is
//! a pure function of its contents and torn-write detection can rely on
//! the CRC alone. The repo vendors no serialisation framework for on-disk
//! data on purpose: the WAL format is a stability surface, and owning the
//! ~hundred lines here is cheaper than pinning one.
//!
//! Integrity is CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`)
//! over the payload bytes — the same checksum family journals like ext4's
//! JBD2 and RocksDB's WAL use for frame validation. The lookup table is
//! built in a `const fn`, so it costs nothing at runtime and needs no
//! lazy-init machinery.

use wft_api::StoreOp;
use wft_seq::{Key, Value};

/// CRC-32 (IEEE) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of `bytes` — the checksum framing every WAL record
/// and checkpoint image.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Fixed-layout binary encoding for durable payload components.
///
/// Implementors append themselves to a byte buffer and decode themselves
/// back from one at a cursor. Decoding returns `None` on underrun — the
/// caller (frame reader or checkpoint loader) treats that as a corrupt
/// payload, never a panic, because torn tails routinely truncate records
/// mid-field.
pub trait WalCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode_wal(&self, out: &mut Vec<u8>);

    /// Decodes one value from `buf` starting at `*pos`, advancing `*pos`
    /// past it. `None` when the buffer is too short.
    fn decode_wal(buf: &[u8], pos: &mut usize) -> Option<Self>;
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let end = pos.checked_add(n)?;
    let slice = buf.get(*pos..end)?;
    *pos = end;
    Some(slice)
}

macro_rules! scalar_codec {
    ($($ty:ty),*) => {$(
        impl WalCodec for $ty {
            fn encode_wal(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode_wal(buf: &[u8], pos: &mut usize) -> Option<Self> {
                let bytes = take(buf, pos, std::mem::size_of::<$ty>())?;
                Some(<$ty>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

scalar_codec!(u8, u16, u32, u64, i8, i16, i32, i64);

impl WalCodec for () {
    fn encode_wal(&self, _out: &mut Vec<u8>) {}

    fn decode_wal(_buf: &[u8], _pos: &mut usize) -> Option<Self> {
        Some(())
    }
}

impl WalCodec for bool {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    fn decode_wal(buf: &[u8], pos: &mut usize) -> Option<Self> {
        match u8::decode_wal(buf, pos)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl<A: WalCodec, B: WalCodec> WalCodec for (A, B) {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        self.0.encode_wal(out);
        self.1.encode_wal(out);
    }

    fn decode_wal(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some((A::decode_wal(buf, pos)?, B::decode_wal(buf, pos)?))
    }
}

/// Operation tags inside a batch record. Explicit constants — these are an
/// on-disk format, not a `#[repr]` detail.
const TAG_INSERT: u8 = 1;
const TAG_INSERT_OR_REPLACE: u8 = 2;
const TAG_REMOVE: u8 = 3;
const TAG_REMOVE_ENTRY: u8 = 4;

/// Appends one [`StoreOp`]'s encoding (tag byte, key, value when present).
pub fn encode_op<K, V>(op: &StoreOp<K, V>, out: &mut Vec<u8>)
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    match op {
        StoreOp::Insert { key, value } => {
            out.push(TAG_INSERT);
            key.encode_wal(out);
            value.encode_wal(out);
        }
        StoreOp::InsertOrReplace { key, value } => {
            out.push(TAG_INSERT_OR_REPLACE);
            key.encode_wal(out);
            value.encode_wal(out);
        }
        StoreOp::Remove { key } => {
            out.push(TAG_REMOVE);
            key.encode_wal(out);
        }
        StoreOp::RemoveEntry { key } => {
            out.push(TAG_REMOVE_ENTRY);
            key.encode_wal(out);
        }
        // The WAL stores *physical* operations only: the journal's log
        // thread resolves every logical `Patch` / `CompareAndSet` / `Get`
        // into upserts and removes (or nothing) before any record is
        // encoded, because replay-over-image idempotency rests on per-key
        // constant effects and a `Patch`'s `fn` pointer has no stable
        // serialisation anyway. See `crate::journal`'s resolution step.
        StoreOp::Patch { .. } | StoreOp::CompareAndSet { .. } | StoreOp::Get { .. } => {
            unreachable!("logical ops are resolved to physical ops before WAL encoding")
        }
    }
}

/// Decodes one [`StoreOp`]; `None` on underrun or an unknown tag.
pub fn decode_op<K, V>(buf: &[u8], pos: &mut usize) -> Option<StoreOp<K, V>>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    match u8::decode_wal(buf, pos)? {
        TAG_INSERT => Some(StoreOp::Insert {
            key: K::decode_wal(buf, pos)?,
            value: V::decode_wal(buf, pos)?,
        }),
        TAG_INSERT_OR_REPLACE => Some(StoreOp::InsertOrReplace {
            key: K::decode_wal(buf, pos)?,
            value: V::decode_wal(buf, pos)?,
        }),
        TAG_REMOVE => Some(StoreOp::Remove {
            key: K::decode_wal(buf, pos)?,
        }),
        TAG_REMOVE_ENTRY => Some(StoreOp::RemoveEntry {
            key: K::decode_wal(buf, pos)?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // The catalogue check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        (-42i64).encode_wal(&mut buf);
        7u32.encode_wal(&mut buf);
        ().encode_wal(&mut buf);
        true.encode_wal(&mut buf);
        let mut pos = 0;
        assert_eq!(i64::decode_wal(&buf, &mut pos), Some(-42));
        assert_eq!(u32::decode_wal(&buf, &mut pos), Some(7));
        assert_eq!(<()>::decode_wal(&buf, &mut pos), Some(()));
        assert_eq!(bool::decode_wal(&buf, &mut pos), Some(true));
        assert_eq!(pos, buf.len());
        assert_eq!(u8::decode_wal(&buf, &mut pos), None, "underrun is None");
    }

    #[test]
    fn ops_round_trip_and_reject_unknown_tags() {
        let ops: Vec<StoreOp<i64, i64>> = vec![
            StoreOp::Insert { key: 1, value: 10 },
            StoreOp::InsertOrReplace { key: -2, value: 20 },
            StoreOp::Remove { key: 3 },
            StoreOp::RemoveEntry { key: i64::MIN },
        ];
        let mut buf = Vec::new();
        for op in &ops {
            encode_op(op, &mut buf);
        }
        let mut pos = 0;
        for op in &ops {
            assert_eq!(decode_op::<i64, i64>(&buf, &mut pos).as_ref(), Some(op));
        }
        assert_eq!(pos, buf.len());

        let bogus = [9u8, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut pos = 0;
        assert_eq!(decode_op::<i64, i64>(&bogus, &mut pos), None);
    }

    #[test]
    fn truncated_op_decodes_to_none() {
        let mut buf = Vec::new();
        encode_op::<i64, i64>(&StoreOp::Insert { key: 5, value: 50 }, &mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                decode_op::<i64, i64>(&buf[..cut], &mut pos),
                None,
                "cut at {cut} must not decode"
            );
        }
    }
}
