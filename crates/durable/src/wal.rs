//! The segmented write-ahead log: frame format, group append, rotation,
//! truncation, torn-tail rollback, and the torn-tail-tolerant recovery
//! reader.
//!
//! # On-disk layout
//!
//! A log is a directory of segment files named `wal-<first_seq:020>.log`,
//! where `first_seq` is the sequence number of the first record the segment
//! may hold (zero-padded so lexicographic order equals numeric order). Each
//! segment is a run of frames:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc` is CRC-32 (IEEE) of the payload. A batch payload is
//!
//! ```text
//! [kind: u8 = 1] [seq: u64 LE] [op_count: u32 LE] [op]...
//! ```
//!
//! with each op encoded by [`crate::codec::encode_op`]. Sequence numbers
//! are assigned contiguously across segments in append order, so the log
//! as a whole is one totally ordered record stream.
//!
//! Every byte goes through the [`crate::storage::Storage`] seam, so the
//! fault-injection harness exercises this exact code, not a test double.
//!
//! # Recovery rules
//!
//! The reader walks segments in `first_seq` order and frames in file order,
//! and applies three rules that together tolerate any torn tail without
//! ever resurrecting a gap:
//!
//! 1. **Bad frame ends the segment.** A short header, short payload, CRC
//!    mismatch, or undecodable payload marks the rest of that segment
//!    unreadable (a torn write corrupts a suffix, never a prefix — frames
//!    are appended in order and fsynced as a group).
//! 2. **Sequence numbers must stay contiguous across everything read.** If
//!    the first record of a later segment does not continue exactly where
//!    the previous readable record stopped, reading stops entirely: the
//!    records after a gap were committed *after* the lost ones, and
//!    replaying them would reorder history.
//! 3. **Recovery never appends to an old segment.** The writer always
//!    rotates to a fresh segment on open, so bytes after a torn tail are
//!    never overwritten in place and re-running recovery is idempotent.
//!
//! # Retry safety: the durable watermark and `rollback_tail`
//!
//! The writer tracks, per segment, the byte length and next-sequence value
//! covered by the **last successful sync**. When an append or fsync fails,
//! bytes past that watermark are in an unknown state (a torn prefix of the
//! group may be readable). [`WalWriter::rollback_tail`] truncates the
//! segment back to the durable watermark, after which re-appending the
//! same group — with the *same* sequence numbers — is safe: no readable
//! frame with a reused sequence number can survive to confuse recovery.
//! This is the primitive the journal's retry loop and the degraded-mode
//! resume protocol are built on.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use wft_api::StoreOp;
use wft_seq::{Key, Value};

use crate::codec::{crc32, decode_op, encode_op, WalCodec};
use crate::storage::Storage;
use crate::storage::StorageFile;

/// Payload kind for a batch record (the only record kind so far; checkpoint
/// metadata lives in its own files).
const KIND_BATCH: u8 = 1;

/// Frame header size: `len` + `crc`.
const FRAME_HEADER: usize = 8;

/// Builds a segment file name for the segment starting at `first_seq`.
fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

/// Parses `first_seq` back out of a segment file name.
fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Segment files in the directory, sorted by `first_seq`.
pub(crate) fn list_segments(storage: &dyn Storage, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for name in storage.list_dir(dir)? {
        if let Some(first) = parse_segment_name(&name) {
            segments.push((first, dir.join(name)));
        }
    }
    segments.sort_unstable_by_key(|(first, _)| *first);
    Ok(segments)
}

/// Encodes one batch record and appends its frame (header + payload) to
/// `out`. Exposed to the journal so a whole commit group becomes one
/// contiguous buffer and one `write` call.
pub(crate) fn encode_frame<K, V>(seq: u64, ops: &[StoreOp<K, V>], out: &mut Vec<u8>)
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    let mut payload = Vec::with_capacity(16 + ops.len() * 16);
    payload.push(KIND_BATCH);
    seq.encode_wal(&mut payload);
    (ops.len() as u32).encode_wal(&mut payload);
    for op in ops {
        encode_op(op, &mut payload);
    }
    (payload.len() as u32).encode_wal(out);
    crc32(&payload).encode_wal(out);
    out.extend_from_slice(&payload);
}

/// The append side of the log. One exists per [`crate::DurableStore`],
/// shared behind a mutex between the journal thread (group appends) and
/// checkpointing (rotation + truncation) — appends never interleave with
/// segment surgery.
pub(crate) struct WalWriter {
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    file: Box<dyn StorageFile>,
    /// Sequence number the next appended record will carry.
    next_seq: u64,
    /// Bytes appended to the current segment so far (including bytes not
    /// yet fsynced).
    segment_len: u64,
    /// `segment_len` as of the last successful sync: everything at or
    /// below this offset is on stable storage and may have been
    /// acknowledged. A rollback truncates to exactly here.
    durable_len: u64,
    /// `next_seq` as of the last successful sync; restored by a rollback
    /// so retried groups reuse the rolled-back sequence numbers.
    durable_next_seq: u64,
    /// `true` when an append failed partway and the file may hold bytes
    /// that `segment_len` does not account for.
    dirty: bool,
    /// Rotate to a fresh segment once the current one exceeds this.
    segment_limit: u64,
}

impl WalWriter {
    /// Opens a **fresh** segment starting at `next_seq`. Called once per
    /// store open (recovery never appends to an old segment) and again on
    /// every rotation.
    pub(crate) fn open(
        storage: Arc<dyn Storage>,
        dir: &Path,
        next_seq: u64,
        segment_limit: u64,
    ) -> io::Result<Self> {
        let file = new_segment(storage.as_ref(), dir, next_seq)?;
        Ok(WalWriter {
            storage,
            dir: dir.to_path_buf(),
            file,
            next_seq,
            segment_len: 0,
            durable_len: 0,
            durable_next_seq: next_seq,
            dirty: false,
            segment_limit,
        })
    }

    /// Appends `batches` as one contiguous frame group, assigning
    /// contiguous sequence numbers. Returns `(first_seq, bytes_written)`;
    /// the records cover `first_seq .. first_seq + batches.len()`. Does
    /// **not** sync — the journal decides when the group hits the platter.
    ///
    /// On failure the segment may hold a torn prefix of the group;
    /// [`rollback_tail`](Self::rollback_tail) before retrying.
    pub(crate) fn append_group<K, V, B>(&mut self, batches: &[B]) -> io::Result<(u64, u64)>
    where
        K: Key + WalCodec,
        V: Value + WalCodec,
        B: AsRef<[StoreOp<K, V>]>,
    {
        let first = self.next_seq;
        let mut buf = Vec::new();
        for (i, ops) in batches.iter().enumerate() {
            encode_frame(first + i as u64, ops.as_ref(), &mut buf);
        }
        self.dirty = true;
        self.file.append(&buf)?;
        self.dirty = false;
        self.next_seq = first + batches.len() as u64;
        self.segment_len += buf.len() as u64;
        Ok((first, buf.len() as u64))
    }

    /// Forces the current segment's appended frames to stable storage and
    /// advances the durable watermark.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.file.sync()?;
        self.durable_len = self.segment_len;
        self.durable_next_seq = self.next_seq;
        Ok(())
    }

    /// Advances the durable watermark without an fsync. Used when the
    /// store runs with fsync disabled (tests, benches): the rollback
    /// baseline then tracks "fully appended" instead of "fsynced", so a
    /// retry rollback only ever erases the failed group itself, never
    /// previously acknowledged unsynced groups.
    pub(crate) fn commit_volatile(&mut self) {
        self.durable_len = self.segment_len;
        self.durable_next_seq = self.next_seq;
    }

    /// `true` when bytes past the durable watermark may exist — a failed
    /// append or fsync left the segment's tail in an unknown state.
    pub(crate) fn has_torn_tail(&self) -> bool {
        self.dirty || self.segment_len != self.durable_len
    }

    /// Truncates the segment back to the last durable watermark, undoing
    /// any torn or unsynced tail so the failed group can be re-appended
    /// with its original sequence numbers. No-op on a clean segment.
    pub(crate) fn rollback_tail(&mut self) -> io::Result<()> {
        if !self.has_torn_tail() {
            return Ok(());
        }
        self.file.truncate(self.durable_len)?;
        self.segment_len = self.durable_len;
        self.next_seq = self.durable_next_seq;
        self.dirty = false;
        Ok(())
    }

    /// `true` once the current segment has outgrown its size limit — the
    /// journal rotates at the next group boundary so no frame straddles
    /// segments.
    pub(crate) fn wants_rotation(&self) -> bool {
        self.segment_len >= self.segment_limit
    }

    /// Closes the current segment (durably) and starts a fresh one at the
    /// current `next_seq`.
    pub(crate) fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        self.file = new_segment(self.storage.as_ref(), &self.dir, self.next_seq)?;
        self.segment_len = 0;
        self.durable_len = 0;
        self.durable_next_seq = self.next_seq;
        self.dirty = false;
        Ok(())
    }

    /// Deletes every segment whose records are all covered by a checkpoint
    /// at `cut` (every record seq `<= cut`). A segment qualifies exactly
    /// when its *successor* segment starts at `cut + 1` or earlier — the
    /// successor's `first_seq` is a strict upper bound on the seqs before
    /// it. The active (last) segment is never deleted. Returns the number
    /// of segments removed.
    pub(crate) fn truncate_through(&mut self, cut: u64) -> io::Result<u64> {
        let segments = list_segments(self.storage.as_ref(), &self.dir)?;
        let mut removed = 0;
        for pair in segments.windows(2) {
            let (_, ref path) = pair[0];
            let (successor_first, _) = pair[1];
            if successor_first <= cut + 1 {
                self.storage.remove_file(path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            self.storage.sync_dir(&self.dir)?;
        }
        Ok(removed)
    }
}

fn new_segment(
    storage: &dyn Storage,
    dir: &Path,
    first_seq: u64,
) -> io::Result<Box<dyn StorageFile>> {
    let path = dir.join(segment_name(first_seq));
    let file = storage.open_append(&path)?;
    // Make the segment's directory entry durable before any record relies
    // on it existing.
    storage.sync_dir(dir)?;
    Ok(file)
}

/// What the recovery reader salvaged from the log directory.
#[derive(Debug)]
pub(crate) struct WalReplay<K: Key, V: Value> {
    /// Readable records in sequence order: `(seq, batch)`.
    pub(crate) records: Vec<(u64, Vec<StoreOp<K, V>>)>,
    /// `true` when any segment ended at a corrupt/short frame or a
    /// cross-segment sequence gap stopped the read — i.e. the log's tail
    /// was torn and some unacknowledged suffix was discarded.
    pub(crate) torn_tail: bool,
    /// Segment files visited.
    pub(crate) segments: u64,
    /// Payload + header bytes of the readable records.
    pub(crate) bytes_read: u64,
}

/// Reads every committed record out of the log directory under the
/// recovery rules in the [module docs](self).
pub(crate) fn read_wal<K, V>(storage: &dyn Storage, dir: &Path) -> io::Result<WalReplay<K, V>>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    let mut replay = WalReplay {
        records: Vec::new(),
        torn_tail: false,
        segments: 0,
        bytes_read: 0,
    };
    let mut expected: Option<u64> = None;
    'segments: for (_, path) in list_segments(storage, dir)? {
        replay.segments += 1;
        let bytes = storage.read(&path)?;
        let mut pos = 0;
        while pos < bytes.len() {
            let Some((seq, ops, frame_len)) = decode_frame::<K, V>(&bytes[pos..]) else {
                // Rule 1: a bad frame ends the segment — everything after
                // it in this file is a torn suffix.
                replay.torn_tail = true;
                continue 'segments;
            };
            if let Some(e) = expected {
                if seq != e {
                    // Rule 2: a sequence gap (torn tail in an *earlier*
                    // segment) invalidates everything after it.
                    replay.torn_tail = true;
                    break 'segments;
                }
            }
            expected = Some(seq + 1);
            replay.records.push((seq, ops));
            replay.bytes_read += frame_len as u64;
            pos += frame_len;
        }
    }
    Ok(replay)
}

/// A decoded frame: its sequence number, ops, and on-disk length in bytes.
type DecodedFrame<K, V> = (u64, Vec<StoreOp<K, V>>, usize);

/// Decodes the frame at the head of `buf`: `Some((seq, ops, frame_len))`
/// when the header, CRC, and payload all check out.
fn decode_frame<K, V>(buf: &[u8]) -> Option<DecodedFrame<K, V>>
where
    K: Key + WalCodec,
    V: Value + WalCodec,
{
    let mut pos = 0;
    let len = u32::decode_wal(buf, &mut pos)? as usize;
    let crc = u32::decode_wal(buf, &mut pos)?;
    let payload = buf.get(FRAME_HEADER..FRAME_HEADER + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let mut p = 0;
    if u8::decode_wal(payload, &mut p)? != KIND_BATCH {
        return None;
    }
    let seq = u64::decode_wal(payload, &mut p)?;
    let count = u32::decode_wal(payload, &mut p)? as usize;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        ops.push(decode_op(payload, &mut p)?);
    }
    // Trailing garbage inside a CRC-valid payload would mean the writer and
    // reader disagree on the format; refuse rather than guess.
    if p != payload.len() {
        return None;
    }
    Some((seq, ops, FRAME_HEADER + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use crate::storage::{Fault, FaultKind, FaultOp, FaultyStorage, FsStorage};
    use std::fs;

    fn fs_storage() -> Arc<dyn Storage> {
        Arc::new(FsStorage)
    }

    fn batch(k: i64) -> Vec<StoreOp<i64, i64>> {
        vec![StoreOp::Insert { key: k, value: k }]
    }

    #[test]
    fn append_sync_and_read_back() {
        let dir = ScratchDir::new("wal-roundtrip");
        let mut w = WalWriter::open(fs_storage(), dir.path(), 1, u64::MAX).unwrap();
        let (first, bytes) = w.append_group(&[batch(1), batch(2), batch(3)]).unwrap();
        assert_eq!(first, 1);
        assert!(bytes > 0);
        w.sync().unwrap();
        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(
            replay.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(replay.records[2].1, batch(3));
        assert_eq!(replay.bytes_read, bytes);
    }

    #[test]
    fn torn_tail_stops_at_first_bad_frame() {
        let dir = ScratchDir::new("wal-torn");
        let mut w = WalWriter::open(fs_storage(), dir.path(), 0, u64::MAX).unwrap();
        w.append_group(&[batch(1), batch(2)]).unwrap();
        w.sync().unwrap();
        let (_, path) = list_segments(&FsStorage, dir.path())
            .unwrap()
            .pop()
            .unwrap();
        let bytes = fs::read(&path).unwrap();
        // Chop the last record mid-payload.
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].0, 0);
    }

    #[test]
    fn corrupted_crc_drops_the_record() {
        let dir = ScratchDir::new("wal-crc");
        let mut w = WalWriter::open(fs_storage(), dir.path(), 0, u64::MAX).unwrap();
        w.append_group(&[batch(7)]).unwrap();
        w.sync().unwrap();
        let (_, path) = list_segments(&FsStorage, dir.path())
            .unwrap()
            .pop()
            .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert!(replay.torn_tail);
        assert!(replay.records.is_empty());
    }

    #[test]
    fn sequence_gap_across_segments_stops_everything() {
        let dir = ScratchDir::new("wal-gap");
        // Segment A holds seq 0; segment B starts at seq 2 — seq 1 was
        // torn away with its whole segment. Nothing after the gap may
        // replay.
        let mut a = WalWriter::open(fs_storage(), dir.path(), 0, u64::MAX).unwrap();
        a.append_group(&[batch(10)]).unwrap();
        a.sync().unwrap();
        drop(a);
        let mut b = WalWriter::open(fs_storage(), dir.path(), 2, u64::MAX).unwrap();
        b.append_group(&[batch(30), batch(40)]).unwrap();
        b.sync().unwrap();
        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].0, 0);
    }

    #[test]
    fn rotation_and_truncation_keep_the_suffix() {
        let dir = ScratchDir::new("wal-truncate");
        let mut w = WalWriter::open(fs_storage(), dir.path(), 0, u64::MAX).unwrap();
        w.append_group(&[batch(1), batch(2)]).unwrap(); // seqs 0, 1
        w.rotate().unwrap();
        w.append_group(&[batch(3)]).unwrap(); // seq 2
        w.rotate().unwrap();
        w.append_group(&[batch(4)]).unwrap(); // seq 3
        w.sync().unwrap();
        assert_eq!(list_segments(&FsStorage, dir.path()).unwrap().len(), 3);

        // Checkpoint at cut = 1 covers exactly the first segment.
        assert_eq!(w.truncate_through(1).unwrap(), 1);
        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert!(!replay.torn_tail, "suffix stays contiguous");
        assert_eq!(
            replay.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![2, 3]
        );

        // A cut past everything still never deletes the active segment.
        assert_eq!(w.truncate_through(100).unwrap(), 1);
        assert_eq!(list_segments(&FsStorage, dir.path()).unwrap().len(), 1);
    }

    #[test]
    fn empty_batches_are_representable() {
        let dir = ScratchDir::new("wal-empty");
        let mut w = WalWriter::open(fs_storage(), dir.path(), 5, u64::MAX).unwrap();
        let empty: Vec<StoreOp<i64, i64>> = Vec::new();
        w.append_group(&[empty]).unwrap();
        w.sync().unwrap();
        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert_eq!(replay.records, vec![(5, vec![])]);
    }

    #[test]
    fn rollback_after_short_write_restores_the_durable_prefix() {
        let dir = ScratchDir::new("wal-rollback");
        let faulty = FaultyStorage::over_fs();
        let mut w = WalWriter::open(
            Arc::new(faulty.clone()) as Arc<dyn Storage>,
            dir.path(),
            0,
            u64::MAX,
        )
        .unwrap();
        w.append_group(&[batch(1)]).unwrap(); // seq 0
        w.sync().unwrap();

        // The next append tears: half its bytes land, then it fails. The
        // second frame is longer than the first so the cut point falls
        // mid-frame and the tear is visible to the reader.
        let fat = vec![
            StoreOp::Insert { key: 3, value: 3 },
            StoreOp::Insert { key: 4, value: 4 },
            StoreOp::Insert { key: 5, value: 5 },
        ];
        faulty.schedule(Fault::nth_of(FaultOp::Append, 1, FaultKind::ShortWrite));
        assert!(w.append_group(&[batch(2), fat.clone()]).is_err());
        assert!(w.has_torn_tail());

        // Before rollback the torn bytes are really on disk.
        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert!(replay.torn_tail);

        // Rollback, re-append the same group: the sequence numbers are
        // reused and the log reads back clean.
        w.rollback_tail().unwrap();
        assert!(!w.has_torn_tail());
        let (first, _) = w.append_group(&[batch(2), fat]).unwrap();
        assert_eq!(first, 1, "rolled-back seqs are reused");
        w.sync().unwrap();
        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(
            replay.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn short_write_on_a_frame_boundary_leaves_an_unacked_record() {
        // When the cut point of a torn group write lands exactly on a
        // frame boundary, the reader sees an *intact* record that was
        // never acknowledged — invisible as corruption, which is exactly
        // why every retry starts with `rollback_tail`.
        let dir = ScratchDir::new("wal-boundary");
        let faulty = FaultyStorage::over_fs();
        let mut w = WalWriter::open(
            Arc::new(faulty.clone()) as Arc<dyn Storage>,
            dir.path(),
            0,
            u64::MAX,
        )
        .unwrap();
        w.append_group(&[batch(1)]).unwrap(); // seq 0, durable
        w.sync().unwrap();

        // Two equal-length frames: half the bytes = exactly the first.
        faulty.schedule(Fault::nth_of(FaultOp::Append, 1, FaultKind::ShortWrite));
        assert!(w.append_group(&[batch(2), batch(3)]).is_err());
        assert!(w.has_torn_tail(), "the writer still knows");

        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert!(!replay.torn_tail, "the reader cannot tell");
        assert_eq!(
            replay.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![0, 1],
            "seq 1 is readable but was never acknowledged"
        );

        // Rollback erases it; the retry reuses seq 1 with different
        // content and recovery stays unambiguous.
        w.rollback_tail().unwrap();
        let (first, _) = w.append_group(&[batch(9)]).unwrap();
        assert_eq!(first, 1);
        w.sync().unwrap();
        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(
            replay.records[1].1,
            vec![StoreOp::Insert { key: 9, value: 9 }],
            "the unacked record is gone, not resurrected"
        );
    }

    #[test]
    fn rollback_after_failed_fsync_discards_the_unsynced_group() {
        let dir = ScratchDir::new("wal-fsync-fail");
        let faulty = FaultyStorage::over_fs();
        let mut w = WalWriter::open(
            Arc::new(faulty.clone()) as Arc<dyn Storage>,
            dir.path(),
            0,
            u64::MAX,
        )
        .unwrap();
        w.append_group(&[batch(1)]).unwrap();
        w.sync().unwrap();

        // Append lands fully, but the fsync fails: the group is readable
        // yet NOT durable — rollback must erase it so a retried group can
        // reuse seq 1 without leaving a duplicate behind.
        faulty.schedule(Fault::nth_of(
            FaultOp::Sync,
            1,
            FaultKind::Error(io::ErrorKind::Other),
        ));
        w.append_group(&[batch(2)]).unwrap();
        assert!(w.sync().is_err());
        assert!(w.has_torn_tail());
        w.rollback_tail().unwrap();

        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 1, "only the durable record stays");

        // Retry with a different payload lands on the freed seq.
        let (first, _) = w.append_group(&[batch(9)]).unwrap();
        assert_eq!(first, 1);
        w.sync().unwrap();
        let replay = read_wal::<i64, i64>(&FsStorage, dir.path()).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].1, batch(9));
    }
}
