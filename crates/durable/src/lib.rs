//! Durability for the sharded wait-free store: write-ahead logging,
//! snapshot-cursor checkpoints, crash recovery, and a real I/O failure
//! policy (retry, degrade, resume).
//!
//! The paper's data structure is an in-memory one; this crate makes the
//! repo's sharded deployment of it ([`wft_store::ShardedStore`])
//! crash-safe without touching the concurrent core:
//!
//! - **Write-ahead log** (`wal`): every mutation is a [`wft_api::StoreOp`]
//!   batch framed as a length-prefixed, CRC-checked record in segmented
//!   append-only files. A dedicated log thread coalesces concurrent
//!   batches into **commit groups** — one `write`, one `fsync` — and
//!   applies them to the store in sequence order *after* they are durable,
//!   so the in-memory state is always a replay of the committed prefix
//!   (`journal`).
//! - **Online checkpoints** (`checkpoint`): [`DurableStore::checkpoint`]
//!   drains a snapshot-consistent [`wft_api::RangeScan`] cursor — writers
//!   never pause — stamps the image with the WAL cut it covers, and
//!   truncates the log behind it. A configurable background policy
//!   ([`CheckpointPolicy`]) triggers the same path automatically when the
//!   live WAL grows past byte or segment thresholds.
//! - **Recovery** (`store`): opening a directory loads the newest valid
//!   checkpoint, replays the WAL suffix tolerating torn tails (stop at
//!   the first bad CRC or short frame; never replay across a sequence
//!   gap), and resumes logging in a fresh segment.
//! - **Fault policy** (`storage`, `journal`): all file I/O goes through
//!   the [`Storage`] seam (real filesystem or the deterministic
//!   [`FaultyStorage`] injector). The log thread retries transient I/O
//!   errors with capped exponential backoff ([`RetryPolicy`]), rolling the
//!   segment tail back before each attempt so retried records reuse their
//!   sequence numbers. A persistent failure escalates — per
//!   [`Escalation`] — into **degraded read-only mode**: acknowledged data
//!   keeps serving from memory, writes fail fast with
//!   [`DurableError::Degraded`], and [`DurableStore::try_resume`] re-probes
//!   storage and re-arms the journal once the disk recovers.
//!
//! The write path is fully instrumented through `wft-obs`: appends,
//! fsyncs, group sizes, commit latencies, checkpoint durations, retries,
//! degraded-mode transitions, and [`wft_obs::TraceKind::WalStall`] /
//! `CheckpointBegin` / `CheckpointEnd` / `IoRetry` / `DegradedEnter` /
//! `DegradedResume` trace events.
//!
//! ```
//! use wft_api::{PointMap, StoreOp};
//! use wft_durable::{DurableStore, ScratchDir};
//!
//! let dir = ScratchDir::new("doc-lib");
//! {
//!     let store: DurableStore<i64, i64> = DurableStore::open(dir.path()).unwrap();
//!     store
//!         .apply_durable((0..5).map(|k| StoreOp::Insert { key: k, value: k * k }).collect())
//!         .unwrap();
//!     store.checkpoint().unwrap();
//!     store.simulate_crash(); // poof
//! }
//! let store: DurableStore<i64, i64> = DurableStore::open(dir.path()).unwrap();
//! assert_eq!(store.get(&4), Some(16));
//! assert_eq!(store.len(), 5);
//! ```

#![warn(missing_docs)]

mod checkpoint;
pub mod codec;
mod journal;
mod scratch;
mod stats;
pub mod storage;
mod store;
mod wal;

pub use codec::WalCodec;
pub use journal::{Escalation, HaltReason, RetryPolicy};
pub use scratch::ScratchDir;
pub use stats::DurableStats;
pub use storage::{Fault, FaultKind, FaultOp, FaultyStorage, FsStorage, Storage, StorageFile};
pub use store::{
    CheckpointPolicy, CheckpointReport, CheckpointTrigger, DurableConfig, DurableStore,
    RecoveryReport,
};

/// Why a durable operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// The underlying storage failed (message carries the OS error) and
    /// the failure was not absorbed by the retry/degrade policy — e.g. a
    /// checkpoint's own I/O failed, or a resume probe found the disk still
    /// dead.
    Io(String),
    /// On-disk state is inconsistent beyond what torn-tail tolerance
    /// covers (e.g. a sequence gap between a checkpoint and the log).
    Corrupt(String),
    /// The batch failed validation ([`wft_api::BatchError`], stringified
    /// so this type stays key-agnostic; the [`wft_api::BatchApply`] impl
    /// reports the typed error instead).
    Batch(String),
    /// The journal has halted and accepts no further writes; the
    /// [`HaltReason`] says whether that was a graceful shutdown, a
    /// (simulated) crash, or an unrecoverable I/O escalation.
    Halted(HaltReason),
    /// The journal is in degraded read-only mode after a persistent
    /// storage failure: reads keep serving from memory, writes fail fast
    /// with this error, and [`DurableStore::try_resume`] can restore write
    /// service once the fault clears. The message carries the escalating
    /// I/O error.
    Degraded(String),
}

impl DurableError {
    pub(crate) fn io(err: std::io::Error) -> Self {
        DurableError::Io(err.to_string())
    }
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(msg) => write!(f, "durable storage I/O failed: {msg}"),
            DurableError::Corrupt(msg) => write!(f, "durable state is corrupt: {msg}"),
            DurableError::Batch(msg) => write!(f, "batch rejected: {msg}"),
            DurableError::Halted(reason) => {
                write!(f, "the durable journal has halted ({reason})")
            }
            DurableError::Degraded(msg) => {
                write!(f, "the durable tier is degraded (read-only): {msg}")
            }
        }
    }
}

impl std::error::Error for DurableError {}
