//! Umbrella crate for the reproduction of *"Wait-free Trees with
//! Asymptotically-Efficient Range Queries"* (IPPS 2024).
//!
//! This crate simply re-exports the workspace members under stable names so
//! the examples and integration tests can use one import root:
//!
//! * [`api`] — the shared trait family ([`PointMap`](wft_api::PointMap),
//!   [`RangeRead`](wft_api::RangeRead), [`BatchApply`](wft_api::BatchApply))
//!   and API vocabulary ([`UpdateOutcome`](wft_api::UpdateOutcome),
//!   [`RangeSpec`](wft_api::RangeSpec), the batch `StoreOp` types) every
//!   backend implements;
//! * [`core`] — the wait-free concurrent augmented tree (the
//!   paper's contribution);
//! * [`queue`] — descriptor queues, timestamp allocation, the
//!   presence index and the other concurrent substrates;
//! * [`seq`] — the augmentation algebra, the sequential augmented
//!   tree and the `BTreeMap` oracle;
//! * [`persistent`] — the persistent path-copying baseline
//!   the paper compares against;
//! * [`lockbased`] — the coarse-grained lock baseline;
//! * [`lockfree`] — the lock-free external BST baseline
//!   representing the "linear-time range queries" class of prior work;
//! * [`lincheck`] — history recording and a linearizability
//!   checker used by the integration test suite;
//! * [`trie`] — a wait-free binary trie with aggregate range
//!   queries: the same helping scheme instantiated for bit-routing (the
//!   paper's §IV future-work item);
//! * [`store`] — the range-partitioned sharded store layering
//!   two-phase batched writes and cross-shard aggregate queries over
//!   independent wait-free tree shards;
//! * [`durable`] — write-ahead logging with group commit, online
//!   snapshot-cursor checkpoints and crash recovery layered under the
//!   sharded store; storage faults are retried with capped backoff and
//!   persistent failures degrade the store to read-only (resumable once
//!   the disk heals) instead of killing it;
//! * [`workload`] — workload generators and the timed
//!   throughput harness behind the experiment suite;
//! * [`obs`] — the unified observability layer: lock-free
//!   counters/gauges, log-bucketed latency histograms, the metrics registry
//!   with JSON/Prometheus exporters and the bounded ring-buffer event
//!   tracer every backend feeds.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.

#![warn(missing_docs)]

pub use wft_api as api;
pub use wft_core as core;
pub use wft_durable as durable;
pub use wft_lincheck as lincheck;
pub use wft_lockbased as lockbased;
pub use wft_lockfree as lockfree;
pub use wft_obs as obs;
pub use wft_persistent as persistent;
pub use wft_queue as queue;
pub use wft_seq as seq;
pub use wft_store as store;
pub use wft_trie as trie;
pub use wft_workload as workload;

/// Convenience re-export of the headline type.
pub use wft_core::WaitFreeTree;

/// Convenience re-export of the trie instantiation of the same scheme.
pub use wft_trie::WaitFreeTrie;

/// Convenience re-export of the sharded store layered over the tree.
pub use wft_store::{ShardedStore, StoreOp};

/// Convenience re-export of the crash-safe store layered over the WAL.
pub use wft_durable::DurableStore;

/// The one-line import for applications: the `wft-api` trait family, its
/// vocabulary types, the augmentation algebra and the concrete structures.
///
/// ```
/// use wait_free_range_trees::prelude::*;
///
/// let tree: WaitFreeTree<i64, i64> = WaitFreeTree::new();
/// assert_eq!(tree.insert_or_replace(1, 10), None);
/// assert_eq!(RangeRead::count(&tree, RangeSpec::all()), 1);
/// ```
pub mod prelude {
    // The trait family and its vocabulary.
    pub use wft_api::{
        BatchApply, BatchError, ChunkRead, OpOutcome, PointMap, RangeKey, RangeRead, RangeScan,
        RangeSpec, ScanConsistency, ScanCursor, SnapshotRead, SnapshotToken, StoreOp,
        TimestampFront, UpdateOutcome,
    };
    // The augmentation algebra.
    pub use wft_seq::{Augmentation, Key, KeyRange, Pair, Size, Sum, SumSquares, Value};
    // The concrete structures applications reach for first.
    pub use wft_core::{ReadPath, RootQueueKind, TreeConfig, WaitFreeTree};
    pub use wft_durable::{DurableConfig, DurableStore};
    pub use wft_store::{split_keys_from_sample, ShardedStore, StoreConfig};
    pub use wft_trie::WaitFreeTrie;
    // The observability surface every backend implements.
    pub use wft_obs::{LatencyHistogram, MetricsSnapshot, MetricsSource, Registry};
}
