//! Umbrella crate for the reproduction of *"Wait-free Trees with
//! Asymptotically-Efficient Range Queries"* (IPPS 2024).
//!
//! This crate simply re-exports the workspace members under stable names so
//! the examples and integration tests can use one import root:
//!
//! * [`core`](wft_core) — the wait-free concurrent augmented tree (the
//!   paper's contribution);
//! * [`queue`](wft_queue) — descriptor queues, timestamp allocation, the
//!   presence index and the other concurrent substrates;
//! * [`seq`](wft_seq) — the augmentation algebra, the sequential augmented
//!   tree and the `BTreeMap` oracle;
//! * [`persistent`](wft_persistent) — the persistent path-copying baseline
//!   the paper compares against;
//! * [`lockbased`](wft_lockbased) — the coarse-grained lock baseline;
//! * [`lockfree`](wft_lockfree) — the lock-free external BST baseline
//!   representing the "linear-time range queries" class of prior work;
//! * [`lincheck`](wft_lincheck) — history recording and a linearizability
//!   checker used by the integration test suite;
//! * [`trie`](wft_trie) — a wait-free binary trie with aggregate range
//!   queries: the same helping scheme instantiated for bit-routing (the
//!   paper's §IV future-work item);
//! * [`store`](wft_store) — the range-partitioned sharded store layering
//!   two-phase batched writes and cross-shard aggregate queries over
//!   independent wait-free tree shards;
//! * [`workload`](wft_workload) — workload generators and the timed
//!   throughput harness behind the experiment suite.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.

#![warn(missing_docs)]

pub use wft_core as core;
pub use wft_lincheck as lincheck;
pub use wft_lockbased as lockbased;
pub use wft_lockfree as lockfree;
pub use wft_persistent as persistent;
pub use wft_queue as queue;
pub use wft_seq as seq;
pub use wft_store as store;
pub use wft_trie as trie;
pub use wft_workload as workload;

/// Convenience re-export of the headline type.
pub use wft_core::WaitFreeTree;

/// Convenience re-export of the trie instantiation of the same scheme.
pub use wft_trie::WaitFreeTrie;

/// Convenience re-export of the sharded store layered over the tree.
pub use wft_store::{ShardedStore, StoreOp};
