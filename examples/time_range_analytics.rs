//! The paper's motivating scenario: live time-range analytics over a stream
//! of requests.
//!
//! Run with `cargo run --release --example time_range_analytics`.
//!
//! The introduction motivates aggregate range queries with "find the number
//! of requests to the system in the specified time range". Here several
//! ingest threads insert request records keyed by (synthetic) timestamp while
//! an analyst thread continuously asks two questions about sliding windows:
//!
//! * how many requests arrived in the window? (`Size` part of the aggregate)
//! * how many bytes did they transfer in total? (`Sum` part)
//!
//! Both are answered by one `O(log N)` aggregate range query thanks to the
//! `Pair<Size, Sum>` augmentation — no scan of the window is ever needed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::prelude::*;

/// Requests are keyed by a synthetic microsecond timestamp; the value is the
/// request's payload size in bytes.
type RequestIndex = WaitFreeTree<i64, i64, Pair<Size, Sum>>;

const INGEST_THREADS: i64 = 3;
const REQUESTS_PER_THREAD: i64 = 30_000;
const WINDOW_MICROS: i64 = 250_000;

fn main() {
    let index: Arc<RequestIndex> = Arc::new(WaitFreeTree::new());
    let done = Arc::new(AtomicBool::new(false));

    // Ingest: each thread owns a disjoint timestamp stripe (as if produced by
    // different front-end shards with their own clocks).
    let ingest: Vec<_> = (0..INGEST_THREADS)
        .map(|shard| {
            let index = Arc::clone(&index);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + shard as u64);
                let mut clock = shard * 1_000_000_000;
                for _ in 0..REQUESTS_PER_THREAD {
                    clock += rng.gen_range(1i64..50);
                    let bytes = rng.gen_range(100..10_000);
                    index.insert(clock, bytes);
                }
            })
        })
        .collect();

    // Analyst: repeatedly aggregates a sliding window over shard 0's stripe.
    let analyst = {
        let index = Arc::clone(&index);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut reports = 0u64;
            let mut last_window_count = 0u64;
            while !done.load(Ordering::Relaxed) {
                let start = rng.gen_range(0..1_000_000);
                let (count, bytes) = index.range_agg(start, start + WINDOW_MICROS);
                // Sanity: an average request is 100..10_000 bytes, so the sum
                // must be consistent with the count.
                assert!(bytes >= count as i128 * 100);
                assert!(bytes <= count as i128 * 10_000);
                last_window_count = count;
                reports += 1;
            }
            (reports, last_window_count)
        })
    };

    for h in ingest {
        h.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let (reports, last_window_count) = analyst.join().unwrap();

    // Final report over one full shard stripe.
    let (total, bytes) = index.range_agg(0, 999_999_999);
    println!(
        "shard 0 ingested {total} requests totalling {bytes} bytes \
         (analyst produced {reports} live window reports; last window held {last_window_count} requests)"
    );
    assert_eq!(total, REQUESTS_PER_THREAD as u64);
    assert_eq!(index.len(), (INGEST_THREADS * REQUESTS_PER_THREAD) as u64);
    println!("time_range_analytics finished successfully");
}
