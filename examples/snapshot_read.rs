//! Consistent cross-shard snapshots with `SnapshotRead`.
//!
//! A sharded store answers every point and range query linearizably, but an
//! *application invariant* often spans several queries: "the shard counts
//! must sum to the total", "the histogram must describe one instant",
//! "count and listing must agree". This example runs concurrent writers
//! that upsert **pairs** of matching keys — a debit at key `k` and a credit
//! at `k + OFFSET`, in different shards, as two separate atomic upserts, so
//! each *pair* has a non-atomic in-flight window — and shows:
//!
//! 1. plain `count` calls taken one after another can disagree about the
//!    world (they are two snapshots);
//! 2. `SnapshotRead::snapshot_counts` answers all ranges from ONE acquired
//!    front, so the invariant "debits == credits modulo the in-flight pair"
//!    becomes checkable;
//! 3. `snapshot_count_and_collect` returns an aggregate and a listing that
//!    provably describe the same instant.
//!
//! Run with `cargo run --release --example snapshot_read`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wait_free_range_trees::prelude::*;

const PAIRS: i64 = 2_000;
/// Debits live in `[0, PAIRS)`, credits in `[OFFSET, OFFSET + PAIRS)` — the
/// two halves land in different shards.
const OFFSET: i64 = 1_000_000;

fn main() {
    // Four shards; the boundary at OFFSET/2 splits debits from credits.
    let store: Arc<ShardedStore<i64, i64>> = Arc::new(ShardedStore::with_boundaries(vec![
        PAIRS / 2,
        OFFSET / 2,
        OFFSET + PAIRS / 2,
    ]));

    let done = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..PAIRS {
                    if i % 2 == w {
                        // The debit and the credit are two separate atomic
                        // upserts — there is a window where only one exists.
                        store.insert_or_replace(i, -1);
                        store.insert_or_replace(OFFSET + i, 1);
                    }
                }
            })
        })
        .collect();

    // Snapshot readers: count debits and credits FROM ONE FRONT. The two
    // counts may differ by the pairs currently mid-flight (each writer has
    // at most one), but they can never drift apart arbitrarily — and the
    // count of one snapshot always equals its listing's length.
    let reader = {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            let mut max_imbalance = 0i64;
            while !done.load(Ordering::Relaxed) {
                let counts = store.snapshot_counts(&[
                    RangeSpec::from_bounds(0..PAIRS),
                    RangeSpec::from_bounds(OFFSET..OFFSET + PAIRS),
                ]);
                let imbalance = (counts[0] as i64 - counts[1] as i64).abs();
                assert!(
                    imbalance <= 2,
                    "a single-front snapshot can only see the writers' in-flight pairs \
                     (got {} debits vs {} credits)",
                    counts[0],
                    counts[1]
                );
                max_imbalance = max_imbalance.max(imbalance);

                let (count, entries) =
                    store.snapshot_count_and_collect(RangeSpec::from_bounds(0..PAIRS));
                assert_eq!(count as usize, entries.len(), "one snapshot, one answer");
                snapshots += 1;
            }
            (snapshots, max_imbalance)
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let (snapshots, max_imbalance) = reader.join().unwrap();

    // Quiescent: every pair committed, the books balance exactly.
    let final_counts = store.snapshot_counts(&[
        RangeSpec::from_bounds(0..PAIRS),
        RangeSpec::from_bounds(OFFSET..OFFSET + PAIRS),
    ]);
    assert_eq!(final_counts, vec![PAIRS as u64, PAIRS as u64]);

    let stats = store.store_stats();
    println!("snapshot_read example");
    println!("  pairs written:               {PAIRS}");
    println!("  snapshots taken:             {snapshots}");
    println!("  max observed imbalance:      {max_imbalance} (bounded by in-flight pairs)");
    println!(
        "  front acquires / retries:    {} / {}",
        stats.snapshot_acquires, stats.snapshot_retries
    );
    println!(
        "  final debits / credits:      {} / {}",
        final_counts[0], final_counts[1]
    );
    println!("ok: every snapshot described one instant of the sharded store");
}
