//! Graceful degradation end to end: a persistent storage failure turns the
//! durable store read-only instead of killing it, and `try_resume` brings
//! it back once the disk heals.
//!
//! Run with `cargo run --release --example degraded_mode`.
//!
//! The walk-through, against a [`FaultyStorage`] over the real filesystem:
//!
//! 1. **Healthy traffic** — acknowledged batches land in the WAL; a
//!    transient drizzle (every 10th storage op fails once) is absorbed by
//!    the journal's retry/backoff loop without the callers noticing.
//! 2. **The disk dies** — a persistent outage makes every storage call
//!    fail; the retry budget runs out and the journal escalates into
//!    **degraded read-only mode**: reads keep serving the acknowledged
//!    prefix from memory, writes fail fast with
//!    [`DurableError::Degraded`], and a `degraded-enter` trace event plus
//!    the `durable_degraded` gauge record the transition.
//! 3. **Premature resume** — `try_resume` while the disk is still dead
//!    probes storage with a genuine write, fails, and leaves the store
//!    degraded (no flapping).
//! 4. **Heal and resume** — after the outage clears, `try_resume` rolls
//!    back the torn WAL tail, opens a fresh fsynced segment, re-arms the
//!    journal, and writes flow again.
//! 5. **Nothing acknowledged was ever lost** — a clean reopen recovers
//!    every acknowledged write from before, across, and after the outage.

use std::io;
use std::sync::Arc;

use wait_free_range_trees::durable::{
    DurableError, DurableStore, FaultyStorage, RetryPolicy, ScratchDir,
};
use wait_free_range_trees::obs::{trace, TraceKind};
use wait_free_range_trees::prelude::*;

fn main() {
    let scratch = ScratchDir::new("degraded-mode");
    let faulty = FaultyStorage::over_fs();
    let config = DurableConfig {
        shards: 2,
        // A tight budget so the escalation happens in milliseconds; the
        // default (6 attempts, 1ms..64ms backoff) rides out longer blips.
        retry: RetryPolicy {
            attempts: 3,
            base_backoff: std::time::Duration::from_micros(100),
            max_backoff: std::time::Duration::from_millis(1),
        },
        ..DurableConfig::default()
    };
    let store: DurableStore<i64, i64> =
        DurableStore::open_with_storage(scratch.path(), config.clone(), Arc::new(faulty.clone()))
            .unwrap();

    // ---- 1. healthy traffic under a transient drizzle -------------------
    faulty.every(10, io::ErrorKind::Interrupted);
    for k in 0..100 {
        store
            .apply_durable(vec![StoreOp::Insert { key: k, value: k }])
            .unwrap();
    }
    faulty.every(0, io::ErrorKind::Interrupted);
    let stats = store.stats();
    assert!(stats.io_retries > 0, "the drizzle really fired");
    assert_eq!(stats.degraded, 0, "transient faults never degrade");
    println!(
        "healthy: 100 acknowledged writes, {} transient faults absorbed by retry",
        stats.io_retries
    );

    // ---- 2. the disk dies -----------------------------------------------
    faulty.outage_now(io::ErrorKind::Other);
    let err = store
        .apply_durable(vec![StoreOp::Insert {
            key: 100,
            value: 100,
        }])
        .unwrap_err();
    assert!(matches!(err, DurableError::Degraded(_)));
    assert!(store.is_degraded());
    assert!(!store.is_halted(), "degraded is not dead");
    println!("outage: write refused with `{err}`");

    // Reads keep serving the acknowledged prefix from memory.
    assert_eq!(PointMap::len(&store), 100);
    assert_eq!(PointMap::get(&store, &42), Some(42));
    assert_eq!(
        RangeRead::count(&store, RangeSpec::inclusive(0, 49)),
        50,
        "range reads survive degraded mode"
    );
    assert_eq!(
        PointMap::get(&store, &100),
        None,
        "the refused write was never applied"
    );
    println!("degraded: reads serve all 100 acknowledged entries; writes fail fast, typed");

    // ---- 3. premature resume --------------------------------------------
    match store.try_resume() {
        Err(DurableError::Io(msg)) => {
            println!("premature resume: probe refused (`{msg}`), store stays degraded")
        }
        other => panic!("resume against a dead disk must fail with Io, got {other:?}"),
    }
    assert!(store.is_degraded());

    // ---- 4. heal and resume ---------------------------------------------
    faulty.heal();
    assert_eq!(store.try_resume(), Ok(true));
    assert!(!store.is_degraded());
    for k in 100..120 {
        store
            .apply_durable(vec![StoreOp::Insert { key: k, value: k }])
            .unwrap();
    }
    let stats = store.stats();
    assert_eq!(stats.degraded_entries, 1);
    assert_eq!(stats.resumes, 1);
    assert_eq!(stats.degraded, 0);
    println!(
        "resumed: 20 more acknowledged writes; stats: {} degraded entry, {} resume",
        stats.degraded_entries, stats.resumes
    );

    // The trace ring recorded the whole arc: retries, the degradation,
    // the resume.
    let events = trace::global().drain();
    let retries = events
        .iter()
        .filter(|e| e.kind == TraceKind::IoRetry)
        .count();
    let enters = events
        .iter()
        .filter(|e| e.kind == TraceKind::DegradedEnter)
        .count();
    let resumes = events
        .iter()
        .filter(|e| e.kind == TraceKind::DegradedResume)
        .count();
    let dropped = trace::global().dropped();
    assert!(
        (enters >= 1 && resumes >= 1) || dropped > 0,
        "the degrade/resume transitions left trace events (unless evicted)"
    );
    println!(
        "trace ring: {retries} io-retry, {enters} degraded-enter, {resumes} degraded-resume \
         ({dropped} older events evicted)"
    );

    // ---- 5. nothing acknowledged was ever lost ---------------------------
    store.shutdown();
    drop(store);
    let recovered: DurableStore<i64, i64> =
        DurableStore::open_with_config(scratch.path(), config).unwrap();
    assert_eq!(PointMap::len(&recovered), 120);
    for k in 0..120 {
        assert_eq!(PointMap::get(&recovered, &k), Some(k));
    }
    recovered.store().check_invariants();
    println!(
        "recovery: all 120 acknowledged writes present (replayed {} records)",
        recovered.recovery().replayed_records
    );

    println!("\ndegraded_mode finished successfully");
}
