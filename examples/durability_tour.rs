//! The `wft-durable` crash-safety layer end to end.
//!
//! Run with `cargo run --release --example durability_tour`.
//!
//! Writers hammer a [`DurableStore`] with acknowledged single-op batches
//! while the tour takes one **online checkpoint** (the image is drained
//! through a snapshot-consistent scan cursor — the writers are never
//! paused) and then **kills the store mid-traffic** with
//! [`DurableStore::simulate_crash`]. The walk-through:
//!
//! * **acknowledged means durable**: each writer keeps a private oracle of
//!   exactly the ops the store acknowledged (disjoint key stripes, so the
//!   union of oracles is the expected survivor state); after the crash and
//!   reopen, the recovered contents must equal that union *exactly* — the
//!   crash may only cut off ops that were never acknowledged;
//! * **metrics mirror stats**: at quiescence (the journal halted), the
//!   [`Registry`] snapshot of the store's [`MetricsSource`] output must
//!   agree field-for-field with [`DurableStore::stats`] — every counter,
//!   gauge and histogram, asserted with `==`, not `>=`;
//! * **the trace ring tells the story**: `wal-stall` events mark commits
//!   that rode another commit's flush group, `checkpoint-begin/end` bracket
//!   the online image — drained from the same global [`TraceRing`] the
//!   other backends feed.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use wait_free_range_trees::durable::{DurableStore, ScratchDir};
use wait_free_range_trees::obs::{trace, TraceKind};
use wait_free_range_trees::prelude::*;

const WRITERS: usize = 4;
const STRIPE: i64 = 1_000;
const BATCHES_PER_WRITER: i64 = 600;

fn main() {
    let scratch = ScratchDir::new("durability-tour");
    let config = DurableConfig {
        shards: 4,
        ..DurableConfig::default()
    };

    // ---- phase 1: traffic, an online checkpoint, then the crash ---------
    let store: Arc<DurableStore<i64, i64>> =
        Arc::new(DurableStore::open_with_config(scratch.path(), config.clone()).unwrap());
    let registry = Registry::new();
    registry.register_source("", Arc::clone(&store) as Arc<dyn MetricsSource>);

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                // A disjoint stripe per writer: each op's final effect is
                // decided by this thread alone, so an oracle of the
                // acknowledged ops is exact, not approximate.
                let base = w as i64 * STRIPE;
                let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
                let mut acked = 0u64;
                for i in 0..BATCHES_PER_WRITER {
                    let key = base + (i % 128);
                    let op = if i % 5 == 4 {
                        StoreOp::Remove { key }
                    } else {
                        StoreOp::InsertOrReplace { key, value: i }
                    };
                    match store.apply_durable(vec![op.clone()]) {
                        Ok(_) => {
                            acked += 1;
                            match op {
                                StoreOp::Remove { key } => {
                                    oracle.remove(&key);
                                }
                                StoreOp::InsertOrReplace { key, value } => {
                                    oracle.insert(key, value);
                                }
                                _ => unreachable!(),
                            }
                        }
                        // The crash landed first: this op never became
                        // durable and the store said so — stop here.
                        Err(_) => break,
                    }
                }
                (oracle, acked)
            })
        })
        .collect();

    // Mid-traffic checkpoint: the image is cut through a snapshot scan
    // cursor while the writers above keep committing.
    thread::sleep(Duration::from_millis(30));
    let checkpoint = store.checkpoint().unwrap();
    println!(
        "checkpoint: cut seq {} / {} entries / {} bytes / {} segment(s) truncated",
        checkpoint.cut, checkpoint.entries, checkpoint.bytes, checkpoint.segments_truncated,
    );

    // The kill switch: halt the log thread the way a power cut would —
    // in-flight submissions fail, nothing un-fsynced is acknowledged.
    thread::sleep(Duration::from_millis(30));
    store.simulate_crash();
    assert!(store.is_halted());

    let mut expected: BTreeMap<i64, i64> = BTreeMap::new();
    let mut total_acked = 0u64;
    let mut all_finished = true;
    for handle in writers {
        let (oracle, acked) = handle.join().unwrap();
        all_finished &= acked == BATCHES_PER_WRITER as u64;
        total_acked += acked;
        expected.extend(oracle);
    }
    println!(
        "crash: {total_acked}/{} ops acknowledged before the kill{}",
        WRITERS as i64 * BATCHES_PER_WRITER,
        if all_finished {
            " (all writers outran the kill — survivor check still exact)"
        } else {
            ""
        },
    );

    // ---- metrics mirror stats, exactly ----------------------------------
    // The journal is halted, so nothing moves between these two reads: the
    // registry's pulled snapshot and the typed stats view must agree
    // field-for-field (they read the same atomics).
    let stats = store.stats();
    let quiesced = registry.snapshot();
    assert_eq!(
        quiesced.counter("durable_wal_appends"),
        Some(stats.wal_appends)
    );
    assert_eq!(
        quiesced.counter("durable_wal_fsyncs"),
        Some(stats.wal_fsyncs)
    );
    assert_eq!(
        quiesced.counter("durable_wal_stalls"),
        Some(stats.wal_stalls)
    );
    assert_eq!(quiesced.counter("durable_wal_bytes"), Some(stats.wal_bytes));
    assert_eq!(
        quiesced.counter("durable_wal_rotations"),
        Some(stats.wal_rotations)
    );
    assert_eq!(
        quiesced.counter("durable_checkpoints"),
        Some(stats.checkpoints)
    );
    assert_eq!(
        quiesced.counter("durable_segments_truncated"),
        Some(stats.segments_truncated)
    );
    assert_eq!(
        quiesced.counter("durable_io_retries"),
        Some(stats.io_retries)
    );
    assert_eq!(
        quiesced.counter("durable_degraded_entries"),
        Some(stats.degraded_entries)
    );
    assert_eq!(quiesced.counter("durable_resumes"), Some(stats.resumes));
    assert_eq!(
        quiesced.counter("durable_auto_checkpoints"),
        Some(stats.auto_checkpoints)
    );
    assert_eq!(
        quiesced.counter("durable_recovery_replayed_records"),
        Some(0)
    );
    assert_eq!(quiesced.counter("durable_recovery_replayed_ops"), Some(0));
    assert_eq!(
        quiesced.gauge("durable_seq_durable"),
        Some(stats.durable_seq as i64)
    );
    assert_eq!(
        quiesced.gauge("durable_seq_applied"),
        Some(stats.applied_seq as i64)
    );
    assert_eq!(quiesced.gauge("durable_recovered_through"), Some(0));
    assert_eq!(
        quiesced.gauge("durable_degraded"),
        Some(stats.degraded as i64),
        "a healthy run never degrades"
    );
    assert_eq!(
        quiesced.histogram("durable_commit_latency_ns"),
        Some(&stats.commit_latency)
    );
    assert_eq!(
        quiesced.histogram("durable_group_size"),
        Some(&stats.group_size)
    );
    assert_eq!(
        quiesced.histogram("durable_checkpoint_duration_ns"),
        Some(&stats.checkpoint_duration)
    );
    assert_eq!(
        stats.wal_appends, total_acked,
        "every ack is one WAL record"
    );
    assert_eq!(stats.durable_seq, stats.applied_seq, "quiescent: no lag");
    println!(
        "metrics == stats at quiescence: {} appends / {} fsyncs / {} coalesced \
         (group mean {:.2}) / commit p99 {} ns",
        stats.wal_appends,
        stats.wal_fsyncs,
        stats.wal_stalls,
        stats.group_size.mean_ns(),
        stats.commit_latency.quantile(0.99),
    );

    // ---- phase 2: recovery ----------------------------------------------
    let recovered: DurableStore<i64, i64> =
        DurableStore::open_with_config(scratch.path(), config).unwrap();
    let report = recovered.recovery().clone();
    assert_eq!(
        report.checkpoint_cut, checkpoint.cut,
        "recovery starts from the image the tour wrote"
    );
    assert_eq!(
        report.recovered_through, stats.durable_seq,
        "replay lands exactly on the pre-crash durable watermark"
    );
    let survivors = RangeRead::collect_range(&recovered, RangeSpec::all());
    let want: Vec<(i64, i64)> = expected.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(
        survivors, want,
        "recovered contents == the union of acknowledged-op oracles"
    );
    recovered.store().check_invariants();
    println!(
        "recovery: checkpoint cut {} + {} replayed records ({} ops) -> {} surviving entries, \
         zero acknowledged ops lost",
        report.checkpoint_cut,
        report.replayed_records,
        report.replayed_ops,
        survivors.len(),
    );

    // ---- the post-mortem timeline ---------------------------------------
    let events = trace::global().drain();
    let stalls = events
        .iter()
        .filter(|e| e.kind == TraceKind::WalStall)
        .count() as u64;
    let begins = events
        .iter()
        .filter(|e| e.kind == TraceKind::CheckpointBegin)
        .count();
    let ends = events
        .iter()
        .filter(|e| e.kind == TraceKind::CheckpointEnd)
        .count();
    assert!(
        stalls <= stats.wal_stalls + trace::global().dropped(),
        "trace events are a (possibly truncated) subset of the counted stalls"
    );
    assert!(
        (begins >= 1 && ends >= 1) || trace::global().dropped() > 0,
        "the checkpoint left its bracket (unless the bounded ring evicted it)"
    );
    println!(
        "\n-- trace ring: {} wal-stall events, {begins} checkpoint-begin / {ends} checkpoint-end --",
        stalls
    );
    let timeline = trace::global().render_timeline();
    for line in timeline
        .lines()
        .rev()
        .take(10)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("{line}");
    }

    println!("\ndurability_tour finished successfully");
}
