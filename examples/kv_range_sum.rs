//! Key-value aggregate range queries: `range_sum` over account balances.
//!
//! Run with `cargo run --release --example kv_range_sum`.
//!
//! The paper's generic claim is that *any* invertible aggregate can be
//! maintained, not just subtree sizes. This example keeps a ledger of
//! account balances keyed by account id and answers "what is the total
//! balance held by accounts in this id range?" in `O(log N)`, while transfer
//! threads move money around concurrently (a re-booking is one atomic
//! `insert_or_replace` upsert). The same queries are answered by the persistent
//! baseline and by the sequential oracle, and all three must agree once the
//! system is quiescent.

use std::sync::Arc;
use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::persistent::PersistentRangeTree;
use wait_free_range_trees::prelude::*;
use wait_free_range_trees::seq::ReferenceMap;

type Ledger = WaitFreeTree<i64, i64, Sum>;

const ACCOUNTS: i64 = 10_000;
const WORKERS: i64 = 4;
const UPDATES_PER_WORKER: usize = 5_000;

fn main() {
    // Every account starts with a balance equal to its id (easy to verify).
    let initial: Vec<(i64, i64)> = (0..ACCOUNTS).map(|id| (id, id)).collect();
    let ledger: Arc<Ledger> = Arc::new(WaitFreeTree::from_entries(initial.clone()));

    // Workers adjust balances of accounts inside their own id stripe.
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let ledger = Arc::clone(&ledger);
            thread::spawn(move || {
                let stripe = ACCOUNTS / WORKERS;
                let lo = w * stripe;
                let mut rng = StdRng::seed_from_u64(w as u64);
                for _ in 0..UPDATES_PER_WORKER {
                    let id = lo + rng.gen_range(0..stripe);
                    // Re-book the account with a new balance: a single
                    // atomic upsert — concurrent stripe totals never observe
                    // the account missing.
                    if let Some(balance) = ledger.get(&id) {
                        ledger.insert_or_replace(id, balance + 1);
                    }
                    // Concurrent range query over the worker's own stripe:
                    // total balance can only have grown.
                    let total = ledger.range_agg(lo, lo + stripe - 1);
                    let baseline: i128 = (lo..lo + stripe).map(|id| id as i128).sum();
                    assert!(total >= baseline - stripe as i128, "stripe total too small");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Quiescent cross-check against the persistent baseline and the oracle.
    let entries = ledger.entries_quiescent();
    let persistent: PersistentRangeTree<i64, i64, Sum> =
        PersistentRangeTree::from_entries(entries.clone());
    let oracle: ReferenceMap<i64, i64> = ReferenceMap::from_entries(entries);

    for (lo, hi) in [
        (0, ACCOUNTS - 1),
        (100, 999),
        (5_000, 5_099),
        (9_990, 20_000),
    ] {
        let a = ledger.range_agg(lo, hi);
        let b = persistent.range_agg(lo, hi);
        let c = oracle.range_agg::<Sum>(lo, hi);
        assert_eq!(a, b, "wait-free vs persistent disagree on [{lo}, {hi}]");
        assert_eq!(a, c, "wait-free vs oracle disagree on [{lo}, {hi}]");
        println!("total balance of accounts [{lo:>5}, {hi:>5}] = {a}");
    }
    println!("kv_range_sum finished successfully");
}
