//! Quickstart: the paper's interface in thirty lines.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! A `WaitFreeTree<i64>` is a concurrent ordered set supporting the four
//! operations evaluated in the paper — `insert`, `remove`, `contains` and the
//! aggregate `count(min, max)` range query — all linearizable and
//! non-blocking, with `count` running in time proportional to the tree height
//! rather than to the number of keys in the range.

use std::sync::Arc;
use std::thread;

use wait_free_range_trees::prelude::*;

fn main() {
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::new());

    // Four threads insert disjoint batches of keys concurrently.
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let tree = Arc::clone(&tree);
            thread::spawn(move || {
                for k in 0..25_000i64 {
                    tree.insert(t * 25_000 + k, ());
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }

    println!("inserted {} keys", tree.len());

    // Scalar queries.
    assert!(tree.contains(&1_234));
    assert!(!tree.contains(&1_000_000));
    assert!(tree.remove(&1_234));
    assert!(!tree.contains(&1_234));

    // The headline query: how many keys fall in [10_000, 59_999]?
    // This runs in O(log N), not O(range size). The key removed above
    // (1_234) lies outside this range, so all 50_000 keys are still counted.
    let in_range = tree.count(10_000, 59_999);
    println!("keys in [10_000, 59_999]: {in_range}");
    assert_eq!(in_range, 50_000);

    // The linear-time alternative from prior work, for comparison.
    let listed = tree.collect_range(10_000, 59_999);
    assert_eq!(listed.len() as u64, in_range);

    println!("quickstart finished successfully");
}
