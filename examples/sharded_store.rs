//! The sharded store serving a mixed ingest/analytics workload.
//!
//! Run with `cargo run --release --example sharded_store`.
//!
//! A production deployment of the paper's tree cannot live on a single
//! root: every update descriptor passes through the root queue, so one tree
//! caps write throughput no matter how many cores are available. This
//! scenario runs `wft-store`'s range-partitioned [`ShardedStore`] the way a
//! serving system would:
//!
//! * boundaries are chosen from a *sample* of the expected key
//!   distribution (deliberately skewed here, to show equi-depth splitting);
//! * writer threads commit their updates through the two-phase
//!   [`ShardedStore::apply_batch`] — including batches that fail validation
//!   and must leave the store untouched;
//! * an analytics thread concurrently issues cross-shard `count` and
//!   `range_agg` queries that are split at the shard boundaries;
//! * at the end, the store's invariants are checked and its aggregate
//!   queries are cross-checked against the sequential oracle.

use std::sync::Arc;
use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::prelude::*;
use wait_free_range_trees::seq::ReferenceMap;

const SHARDS: usize = 8;
const WRITERS: u64 = 4;
const BATCHES_PER_WRITER: u64 = 200;
const BATCH_SIZE: i64 = 128;
const KEYSPACE: i64 = 1 << 20;

/// The skewed key distribution the service expects: 75% of traffic hits the
/// low quarter of the keyspace.
fn sample_key(rng: &mut StdRng) -> i64 {
    if rng.gen_bool(0.75) {
        rng.gen_range(0..KEYSPACE / 4)
    } else {
        rng.gen_range(KEYSPACE / 4..KEYSPACE)
    }
}

fn main() {
    // Boundary selection from a sampled distribution: load the store with a
    // sample of the traffic so `from_entries` picks equi-depth split keys.
    let mut rng = StdRng::seed_from_u64(42);
    let sample: Vec<(i64, i64)> = (0..50_000).map(|_| (sample_key(&mut rng), 0)).collect();
    let store: Arc<ShardedStore<i64, i64, Pair<Size, Sum>>> = Arc::new(
        ShardedStore::from_entries_with_config(sample, SHARDS, StoreConfig::default()),
    );
    println!(
        "boundaries picked from the sampled distribution: {:?}",
        store.boundaries()
    );
    let lens = store.shard_lens();
    let (min_len, max_len) = (
        lens.iter().min().copied().unwrap_or(0),
        lens.iter().max().copied().unwrap_or(0),
    );
    println!("initial shard sizes {lens:?} (max/min = {max_len}/{min_len})");
    assert!(
        max_len <= 2 * min_len.max(1),
        "equi-depth splitting must keep shards balanced despite the skew"
    );

    // Writers: each owns a disjoint key stripe (writer w uses keys with
    // `key % WRITERS == w`) and commits batched upserts/deletes.
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1_000 + w);
                let mut committed = 0u64;
                let mut rejected = 0u64;
                for round in 0..BATCHES_PER_WRITER {
                    // Batch keys stay in this writer's stripe (key ≡ w mod
                    // WRITERS) and must be distinct within the batch — the
                    // two-phase validator rejects intra-batch duplicates.
                    let mut keys = std::collections::HashSet::new();
                    while (keys.len() as i64) < BATCH_SIZE {
                        let key =
                            (sample_key(&mut rng) / WRITERS as i64) * WRITERS as i64 + w as i64;
                        keys.insert(key % KEYSPACE);
                    }
                    let mut batch: Vec<StoreOp<i64, i64>> = keys
                        .into_iter()
                        .map(|key| {
                            if rng.gen_bool(0.7) {
                                StoreOp::InsertOrReplace {
                                    key,
                                    value: round as i64,
                                }
                            } else {
                                StoreOp::Remove { key }
                            }
                        })
                        .collect();
                    // Every 16th round, corrupt the batch with a duplicate:
                    // phase-one validation must reject it wholesale, before
                    // any shard is touched.
                    if round % 16 == 0 {
                        let dup = *batch[0].key();
                        batch.push(StoreOp::Remove { key: dup });
                        assert!(store.apply_batch(batch).is_err());
                        rejected += 1;
                        continue;
                    }
                    match store.apply_batch(batch) {
                        Ok(outcomes) => {
                            assert_eq!(outcomes.len(), BATCH_SIZE as usize);
                            committed += 1;
                        }
                        Err(e) => panic!("clean batch rejected: {e}"),
                    }
                }
                (committed, rejected)
            })
        })
        .collect();

    // Analytics: cross-shard aggregates while the writers hammer the store.
    let analyst = {
        let store = Arc::clone(&store);
        thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut queries = 0u64;
            for _ in 0..2_000 {
                // Wide aggregate queries are cheap — O(log n) per
                // overlapped shard — so they can straddle many boundaries.
                let lo = rng.gen_range(0..KEYSPACE / 2);
                let hi = lo + rng.gen_range(0..KEYSPACE / 2);
                let count = store.count(lo, hi);
                assert!(count <= store.len() + 1024);
                // Collect queries report every entry in the range; keep
                // them narrow (they are linear in the result size).
                let narrow_hi = lo + rng.gen_range(0i64..4_096);
                let collected = store.collect_range(lo, narrow_hi);
                assert!(collected.windows(2).all(|w| w[0].0 < w[1].0));
                queries += 1;
            }
            queries
        })
    };

    let mut committed_total = 0u64;
    let mut rejected_total = 0u64;
    for writer in writers {
        let (committed, rejected) = writer.join().unwrap();
        committed_total += committed;
        rejected_total += rejected;
    }
    let queries = analyst.join().unwrap();

    // Quiescent verification: shard invariants, key placement, and oracle
    // agreement on the aggregate queries.
    store.check_invariants();
    let entries = store.entries_quiescent();
    let oracle: ReferenceMap<i64, i64> = ReferenceMap::from_entries(entries.clone());
    assert_eq!(store.len(), oracle.len());
    for (lo, hi) in [
        (0, KEYSPACE - 1),
        (0, KEYSPACE / 4),
        (KEYSPACE / 2, KEYSPACE),
    ] {
        assert_eq!(store.count(lo, hi), oracle.count(lo, hi));
        assert_eq!(store.range_agg(lo, hi).1, oracle.range_agg::<Sum>(lo, hi));
    }

    println!(
        "{committed_total} batches committed, {rejected_total} rejected wholesale, \
         {queries} concurrent cross-shard queries"
    );
    println!(
        "final: {} keys across {} shards {:?}",
        store.len(),
        store.num_shards(),
        store.shard_lens()
    );
    println!("sharded_store finished successfully");
}
