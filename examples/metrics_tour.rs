//! The `wft-obs` observability layer end to end.
//!
//! Run with `cargo run --release --example metrics_tour`.
//!
//! Every backend in this workspace implements [`MetricsSource`], so one
//! [`Registry`] can watch a live structure alongside application-level
//! instruments. This tour runs writers and cross-shard scanners racing on a
//! [`ShardedStore`] and walks the full story:
//!
//! * **registry**: the store registered as a pulled source next to
//!   app-level counter/histogram handles (lock-free sharded cells — the hot
//!   path is one relaxed `fetch_add`, no locks, no contention);
//! * **window deltas**: a [`MetricsSnapshot`] taken before and after the
//!   race, subtracted bucket-wise/counter-wise — the per-measurement-window
//!   arithmetic the bench binaries embed in their `BENCH_*.json`;
//! * **one counter, three views**: `snapshot_retries` read through the
//!   legacy `StoreStats` API, through the registry's snapshot, and as
//!   per-shard-attributed `SnapshotRetry` events in the global
//!   [`TraceRing`] timeline — all fed by the same atomics, so the views
//!   cannot disagree;
//! * **exporters**: the same snapshot rendered as Prometheus text and
//!   round-tripped through the JSON exporter.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::obs::{trace, TraceKind};
use wait_free_range_trees::prelude::*;

const SHARDS: usize = 8;
const KEYSPACE: i64 = 1 << 18;
const WRITERS: usize = 2;
const SCANNERS: usize = 2;

fn main() {
    let store: Arc<ShardedStore<i64>> = Arc::new(ShardedStore::from_entries(
        (0..KEYSPACE).filter(|k| k % 2 == 0).map(|k| (k, ())),
        SHARDS,
    ));

    // One registry watches the store (a pulled source — its `MetricsSource`
    // impl is polled at snapshot time) next to app-level instruments whose
    // handles live on the hot path.
    let registry = Registry::new();
    registry.register_source("", Arc::clone(&store) as Arc<dyn MetricsSource>);
    let queries = registry.counter("app_queries");
    let query_latency = registry.histogram("app_query_latency_ns");

    // The measurement window starts here: deltas against this snapshot
    // isolate what the race below did from the prefill above.
    let window_start = registry.snapshot();

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + w as u64);
                let mut writes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.gen_range(0..KEYSPACE);
                    if rng.gen_bool(0.5) {
                        store.insert(k, ());
                    } else {
                        store.remove(&k);
                    }
                    writes += 1;
                }
                writes
            })
        })
        .collect();

    let scanners: Vec<_> = (0..SCANNERS)
        .map(|s| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            let query_latency = Arc::clone(&query_latency);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(200 + s as u64);
                while !stop.load(Ordering::Relaxed) {
                    // Cross-shard aggregate counts and short cursor drains:
                    // exactly the reads whose retries/resumes the store
                    // attributes per shard in the trace ring.
                    let lo = rng.gen_range(0..KEYSPACE / 4);
                    let hi = KEYSPACE - 1 - rng.gen_range(0..KEYSPACE / 4);
                    let at = Instant::now();
                    if rng.gen_bool(0.8) {
                        std::hint::black_box(store.count(lo, hi));
                    } else {
                        let mut cursor = store.scan(RangeSpec::inclusive(lo, lo + 4_096));
                        while !cursor.next_chunk(256).is_empty() {}
                    }
                    query_latency.observe(at.elapsed());
                    queries.inc();
                }
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    let writes: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    scanners.into_iter().for_each(|h| h.join().unwrap());

    // -- one counter, three views ----------------------------------------
    let stats = store.store_stats();
    let end = registry.snapshot();
    assert_eq!(
        end.counter("store_snapshot_retries"),
        Some(stats.snapshot_retries),
        "the registry view reads the same atomics as StoreStats"
    );
    let events = trace::global().drain();
    let traced_retries = events
        .iter()
        .filter(|e| e.kind == TraceKind::SnapshotRetry)
        .count() as u64;
    println!(
        "snapshot_retries: {} (StoreStats) == {:?} (registry); {} in the trace ring \
         (bounded buffer, so ≤ the counter)",
        stats.snapshot_retries,
        end.counter("store_snapshot_retries").unwrap(),
        traced_retries,
    );
    assert!(
        traced_retries <= stats.snapshot_retries + trace::global().dropped(),
        "trace events are a (possibly truncated) subset of the counted retries"
    );

    // -- the window delta -------------------------------------------------
    let window = end.delta_since(&window_start);
    let app_queries = window.counter("app_queries").unwrap_or(0);
    assert!(app_queries > 0, "scanners ran");
    assert_eq!(
        app_queries,
        queries.value(),
        "delta equals the handle's own cumulative value (window started at 0)"
    );
    let lat = window
        .histogram("app_query_latency_ns")
        .expect("histogram sampled in window");
    println!(
        "window: {writes} writes, {app_queries} queries; query latency p50 {} ns, p99 {} ns, \
         p999 {} ns over {} samples",
        lat.quantile(0.50),
        lat.quantile(0.99),
        lat.quantile(0.999),
        lat.count,
    );

    // -- exporters --------------------------------------------------------
    let round_tripped =
        MetricsSnapshot::from_json(&window.to_json()).expect("JSON exporter round-trips");
    assert_eq!(round_tripped, window);
    println!("\n-- Prometheus exposition (window delta) --");
    let text = window.to_prometheus();
    // Histogram series are long; show the counters/gauges and the quantile
    // summary above instead of every bucket line.
    for line in text.lines().filter(|l| !l.contains("_bucket{")) {
        println!("{line}");
    }

    // -- the post-mortem timeline -----------------------------------------
    println!("\n-- trace ring (last {} events) --", events.len().min(12));
    let timeline = trace::global().render_timeline();
    for line in timeline
        .lines()
        .rev()
        .take(12)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("{line}");
    }

    println!("\nmetrics_tour finished successfully");
}
