//! A miniature version of the paper's evaluation, runnable in seconds.
//!
//! Run with `cargo run --release --example baseline_comparison`.
//!
//! Uses the same workload generators and timed harness as the full `figures`
//! binary, but with small key ranges and very short intervals, to print a
//! side-by-side throughput comparison of
//!
//! * the wait-free tree (this paper),
//! * the persistent path-copying tree (the paper's competitor),
//! * the global-lock baseline,
//!
//! on the three workloads of §III. For the full experiment suite (thread
//! sweeps, paper-scale key ranges, CSV output) use
//! `cargo run -p wft-bench --release --bin figures -- all`.

use std::time::Duration;

use wait_free_range_trees::workload::{
    render_table, run_experiment, ExperimentConfig, FigureRow, TreeImpl, WorkloadSpec,
};

fn main() {
    let config = ExperimentConfig {
        threads: vec![2],
        duration: Duration::from_millis(150),
        runs: 2,
        seed: 42,
    };
    let workloads = [
        WorkloadSpec::contains_benchmark().scaled_down(20_000),
        WorkloadSpec::insert_delete().scaled_down(20_000),
        WorkloadSpec::successful_insert().scaled_down(20_000),
    ];
    let impls = [TreeImpl::WaitFree, TreeImpl::Persistent, TreeImpl::Locked];

    let mut rows = Vec::new();
    for spec in workloads {
        for imp in impls {
            let summary = run_experiment(imp, &spec, 2, &config);
            rows.push(FigureRow {
                workload: spec.name.to_string(),
                implementation: imp.name().to_string(),
                threads: 2,
                ops_per_sec: summary.mean_ops_per_sec,
                min_ops_per_sec: summary.min_ops_per_sec,
                max_ops_per_sec: summary.max_ops_per_sec,
                runs: summary.runs,
                p50_ns: summary.p50_ns,
                p99_ns: summary.p99_ns,
                p999_ns: summary.p999_ns,
            });
        }
    }
    println!(
        "{}",
        render_table("Mini evaluation (2 threads, scaled-down workloads)", &rows)
    );
    println!("baseline_comparison finished successfully");
}
