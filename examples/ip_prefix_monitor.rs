//! Network-style scenario for the trie instantiation: counting active hosts
//! per IP prefix while the address set churns.
//!
//! Run with `cargo run --release --example ip_prefix_monitor`.
//!
//! The paper's conclusion proposes applying the hand-over-hand-helping scheme
//! to tries; `wft_trie::WaitFreeTrie` does exactly that. IPv4 addresses are
//! 32-bit integers, and a CIDR prefix (`10.1.0.0/16`, say) is precisely a
//! contiguous key range, so "how many active hosts are in this subnet?" is an
//! aggregate range query answered in at most 32 routing steps — no matter
//! whether the subnet holds ten hosts or ten million.
//!
//! Several scanner threads add and expire host addresses concurrently while a
//! monitor thread asks per-prefix counts; at the end the per-/16 counts are
//! cross-checked against an exact recount.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::prelude::*;

/// Active hosts, keyed by the numeric form of their IPv4 address.
type HostSet = WaitFreeTrie<u32>;

const SCANNERS: u64 = 3;
const EVENTS_PER_SCANNER: u64 = 40_000;
/// The monitored networks: 10.0.0.0/16 .. 10.7.0.0/16.
const MONITORED_NETS: u32 = 8;

/// The inclusive address range of `10.<net>.0.0/16`.
fn net_range(net: u32) -> (u32, u32) {
    let base = u32::from(Ipv4Addr::new(10, net as u8, 0, 0));
    (base, base | 0xFFFF)
}

fn main() {
    let hosts: Arc<HostSet> = Arc::new(WaitFreeTrie::new());
    let done = Arc::new(AtomicBool::new(false));

    // Scanners: observe hosts appearing (insert) and going silent (remove)
    // across the monitored /16 networks.
    let scanners: Vec<_> = (0..SCANNERS)
        .map(|id| {
            let hosts = Arc::clone(&hosts);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xD15C0 + id);
                for _ in 0..EVENTS_PER_SCANNER {
                    let net = rng.gen_range(0..MONITORED_NETS);
                    let host = rng.gen_range(0..=0xFFFFu32);
                    let address = net_range(net).0 | host;
                    if rng.gen_bool(0.7) {
                        hosts.insert(address, ());
                    } else {
                        hosts.remove(&address);
                    }
                }
            })
        })
        .collect();

    // Monitor: live per-prefix occupancy queries, each a single aggregate
    // range query over the prefix's address range.
    let monitor = {
        let hosts = Arc::clone(&hosts);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut reports = 0u64;
            let mut peak = 0u64;
            while !done.load(Ordering::Relaxed) {
                for net in 0..MONITORED_NETS {
                    let (lo, hi) = net_range(net);
                    let active = hosts.count(lo, hi);
                    // A /16 can never hold more than 65 536 hosts.
                    assert!(active <= 0x1_0000);
                    peak = peak.max(active);
                }
                reports += 1;
            }
            (reports, peak)
        })
    };

    for s in scanners {
        s.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let (reports, peak) = monitor.join().unwrap();

    // Quiescent cross-check: the per-prefix aggregate counts must add up to
    // the total population and agree with an exact enumeration.
    let mut total_by_prefix = 0u64;
    println!("active hosts per monitored /16:");
    for net in 0..MONITORED_NETS {
        let (lo, hi) = net_range(net);
        let active = hosts.count(lo, hi);
        let enumerated = hosts.collect_range(lo, hi).len() as u64;
        assert_eq!(active, enumerated, "aggregate disagrees with enumeration");
        println!("  10.{net}.0.0/16  {active:>6} hosts");
        total_by_prefix += active;
    }
    assert_eq!(total_by_prefix, hosts.len());
    hosts.check_invariants();
    println!(
        "{total} hosts tracked in total; monitor produced {reports} sweeps, peak prefix occupancy {peak}",
        total = hosts.len()
    );
    println!("ip_prefix_monitor finished successfully");
}
