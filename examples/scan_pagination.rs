//! Paginated range consumption with `RangeScan` cursors.
//!
//! A client listing a large keyspace slice cannot hold the whole answer in
//! memory — it wants **pages**. This example runs an inventory-style store
//! (order id → quantity) under concurrent writers and serves the classic
//! paginated listing with a streaming cursor:
//!
//! 1. `scan` opens a cursor anchored at a snapshot token; `next_chunk(PAGE)`
//!    yields one bounded page at a time, resuming strictly after the last
//!    key of the previous page — no page ever repeats or reorders a key,
//!    no matter how hard the writers race the reader;
//! 2. a drain that finishes with `ScanConsistency::Snapshot` is provably
//!    equal to one `collect_range_at` of the cursor's token: the pages,
//!    though read far apart in time, form ONE atomic listing;
//! 3. when writers do disturb the scanned suffix, the cursor re-anchors
//!    transparently and reports `ScanConsistency::Resumed` — the caller
//!    decides whether "consistent pages, evolving world" is acceptable or
//!    whether to retry via `scan_snapshot` once traffic allows.
//!
//! Run with `cargo run --release --example scan_pagination`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wait_free_range_trees::prelude::*;

const ORDERS: i64 = 50_000;
const PAGE: usize = 256;

fn main() {
    // An 8-shard store pre-filled with every even order id.
    let store: Arc<ShardedStore<i64, i64>> = Arc::new(ShardedStore::from_entries(
        (0..ORDERS).filter(|k| k % 2 == 0).map(|k| (k, 1)),
        8,
    ));

    let done = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut writes = 0u64;
                let mut next = 1 + 2 * w; // odd ids, disjoint per writer
                while !done.load(Ordering::Relaxed) {
                    if store.insert(next, 1) {
                        writes += 1;
                    } else {
                        store.remove(&next);
                    }
                    next = (next + 4) % ORDERS;
                }
                writes
            })
        })
        .collect();

    // The reader pages through the whole keyspace over and over, tallying
    // how its drains fared against the write storm.
    let mut pages = 0u64;
    let mut snapshot_drains = 0u64;
    let mut resumed_drains = 0u64;
    let mut drained_entries = 0u64;
    for _ in 0..40 {
        let mut cursor = store.scan(RangeSpec::all());
        let mut last_key = i64::MIN;
        loop {
            let page = cursor.next_chunk(PAGE);
            if page.is_empty() {
                break;
            }
            // Keyset pagination: every page picks up strictly after the
            // previous one, writers or not.
            assert!(page.first().unwrap().0 > last_key, "a page went backwards");
            assert!(
                page.windows(2).all(|p| p[0].0 < p[1].0),
                "a page repeated or reordered keys"
            );
            last_key = page.last().unwrap().0;
            pages += 1;
            drained_entries += page.len() as u64;
        }
        match cursor.consistency() {
            ScanConsistency::Snapshot => snapshot_drains += 1,
            ScanConsistency::Resumed => resumed_drains += 1,
        }
    }

    done.store(true, Ordering::Relaxed);
    let writes: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();

    // Quiescent: the retrying driver produces one atomic listing, and it
    // agrees with the one-shot range read and the front-riding len.
    let listing = store.scan_snapshot(RangeSpec::all(), PAGE);
    assert_eq!(listing.len() as u64, store.len());
    assert_eq!(
        listing,
        RangeRead::collect_range(&*store, RangeSpec::all()),
        "a snapshot drain equals one collect_range"
    );

    let stats = store.store_stats();
    let shard_exits: u64 = store
        .shard_stats()
        .iter()
        .map(|s| s.fast_range_early_exits)
        .sum();
    println!("scan_pagination example");
    println!("  page size:                   {PAGE}");
    println!("  pages served:                {pages} ({drained_entries} entries)");
    println!(
        "  drains snapshot / resumed:   {snapshot_drains} / {resumed_drains} (under {writes} writes)"
    );
    println!("  cursor resumes (store):      {}", stats.scan_resumes);
    println!("  chunk early exits (shards):  {shard_exits}");
    println!("  final inventory size:        {}", listing.len());
    println!("ok: every page resumed exactly after the last, duplicates impossible");
}
