//! Crash recovery against a `BTreeMap` oracle of the committed prefix.
//!
//! The durable store's contract (see `wft-durable`): after a crash at
//! **any** point — including mid-record torn tails and corrupted frames —
//! recovery rebuilds exactly the state produced by some prefix of the
//! committed batches, namely the longest prefix whose WAL records survive
//! intact, on top of the newest checkpoint. Nothing committed before that
//! point is lost; nothing is applied twice (checkpoint + replay of an
//! overlapping suffix must be a no-op, the per-key idempotency argument in
//! `wft-durable`'s store docs).
//!
//! The proptest drives random batches with an optional mid-run checkpoint,
//! then simulates the crash by truncating the live WAL segment at a random
//! byte offset or flipping a random byte (a torn sector), reopens, and
//! compares against the oracle replay of exactly the surviving prefix.
//! Frame boundaries are read back from the segment's own length prefixes,
//! so the test knows which batches survived without re-deriving the
//! payload format.
//!
//! A concurrent (non-proptest) test checkpoints while writers hammer the
//! store and verifies the reopened state equals the quiescent survivor
//! state — the "checkpoint never pauses writers, never loses or
//! duplicates a committed op" acceptance criterion.
//!
//! The generated batches mix the four physical ops with the *logical*
//! ones (`Patch`, `CompareAndSet`): the WAL never stores those — the
//! journal resolves them to physical ops against the live state before
//! encoding — so these tests double as proof that physical logging
//! reproduces exactly the state the logical oracle predicts, across
//! torn tails, crashed checkpoints, and concurrent traffic.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;

use wait_free_range_trees::durable::{
    DurableConfig, DurableStore, Fault, FaultKind, FaultyStorage, ScratchDir,
};
use wait_free_range_trees::prelude::*;

/// The deterministic read-modify-write every generated `Patch` carries.
/// `PatchFn` is a plain fn pointer, so the whole behaviour lives here:
/// absent keys join at 1, multiples of five leave, everything else
/// counts up.
fn bump(current: Option<i64>) -> Option<i64> {
    match current {
        None => Some(1),
        Some(v) if v % 5 == 0 => None,
        Some(v) => Some(v + 1),
    }
}

/// One op inside a generated batch.
#[derive(Debug, Clone)]
enum GenOp {
    Insert(i64, i64),
    Upsert(i64, i64),
    Remove(i64),
    RemoveEntry(i64),
    /// `StoreOp::Patch` with [`bump`].
    Patch(i64),
    /// `StoreOp::CompareAndSet` with a generated witness — `None`
    /// witnesses hit whenever the key is absent, `Some` ones mostly miss,
    /// so both the applied and the refused paths reach the WAL (a refused
    /// CAS resolves to *no* physical op but still consumes a record).
    Cas(i64, Option<i64>, i64),
}

impl GenOp {
    fn key(&self) -> i64 {
        match *self {
            GenOp::Insert(k, _)
            | GenOp::Upsert(k, _)
            | GenOp::Remove(k)
            | GenOp::RemoveEntry(k)
            | GenOp::Patch(k)
            | GenOp::Cas(k, _, _) => k,
        }
    }

    fn to_store_op(&self) -> StoreOp<i64, i64> {
        match *self {
            GenOp::Insert(key, value) => StoreOp::Insert { key, value },
            GenOp::Upsert(key, value) => StoreOp::InsertOrReplace { key, value },
            GenOp::Remove(key) => StoreOp::Remove { key },
            GenOp::RemoveEntry(key) => StoreOp::RemoveEntry { key },
            GenOp::Patch(key) => StoreOp::Patch { key, patch: bump },
            GenOp::Cas(key, expect, value) => StoreOp::CompareAndSet { key, expect, value },
        }
    }

    fn apply_to_oracle(&self, oracle: &mut BTreeMap<i64, i64>) {
        match *self {
            GenOp::Insert(k, v) => {
                oracle.entry(k).or_insert(v);
            }
            GenOp::Upsert(k, v) => {
                oracle.insert(k, v);
            }
            GenOp::Remove(k) | GenOp::RemoveEntry(k) => {
                oracle.remove(&k);
            }
            GenOp::Patch(k) => match bump(oracle.get(&k).copied()) {
                Some(v) => {
                    oracle.insert(k, v);
                }
                None => {
                    oracle.remove(&k);
                }
            },
            GenOp::Cas(k, expect, v) => {
                if oracle.get(&k).copied() == expect {
                    oracle.insert(k, v);
                }
            }
        }
    }
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    let key = -50i64..50;
    let witness = prop_oneof![Just(None), (-1000i64..1000).prop_map(Some)];
    prop_oneof![
        (key.clone(), -1000i64..1000).prop_map(|(k, v)| GenOp::Insert(k, v)),
        (key.clone(), -1000i64..1000).prop_map(|(k, v)| GenOp::Upsert(k, v)),
        key.clone().prop_map(GenOp::Remove),
        key.clone().prop_map(GenOp::RemoveEntry),
        key.clone().prop_map(GenOp::Patch),
        (key, witness, -1000i64..1000).prop_map(|(k, e, v)| GenOp::Cas(k, e, v)),
    ]
}

/// Batches must address each key at most once; keep the first op per key.
fn dedup_batch(ops: Vec<GenOp>) -> Vec<GenOp> {
    let mut seen = std::collections::HashSet::new();
    ops.into_iter().filter(|op| seen.insert(op.key())).collect()
}

fn test_config() -> DurableConfig {
    DurableConfig {
        shards: 3,
        // The crash is simulated by byte surgery after a clean close, so
        // skipping fsync only speeds the test up — the bytes are all in
        // the page cache either way.
        fsync: false,
        ..DurableConfig::default()
    }
}

/// The WAL segment files under `dir`, sorted by starting sequence number.
fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    segments
}

/// Frame `[start, end)` byte ranges of a segment, via its length prefixes.
fn frame_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 0;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 8 + len;
        if end > bytes.len() {
            break;
        }
        spans.push((pos, end));
        pos = end;
    }
    spans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Commit random batches (optionally checkpointing mid-run), crash at
    /// a random WAL byte offset — truncation or a flipped byte — and
    /// verify recovery equals the oracle replay of exactly the surviving
    /// committed prefix, twice (recovery must be idempotent).
    #[test]
    fn recovery_replays_exactly_the_surviving_prefix(
        raw_batches in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..8), 1..16),
        checkpoint_at in prop_oneof![Just(usize::MAX), 0..16usize],
        damage_permille in 0..=1000u32,
        flip_instead_of_truncate in any::<bool>(),
    ) {
        let scratch = ScratchDir::new("recovery-prop");
        let batches: Vec<Vec<GenOp>> =
            raw_batches.into_iter().map(dedup_batch).collect();

        // `states[i]` = oracle after batches `0..i` (so `states[0]` is
        // the empty state).
        let mut states: Vec<BTreeMap<i64, i64>> = vec![BTreeMap::new()];
        for batch in &batches {
            let mut next = states.last().unwrap().clone();
            for op in batch {
                op.apply_to_oracle(&mut next);
            }
            states.push(next);
        }

        // Commit every batch; checkpoint after `checkpoint_at` batches.
        let mut checkpointed = 0usize;
        {
            let store: DurableStore<i64, i64> =
                DurableStore::open_with_config(scratch.path(), test_config()).unwrap();
            for (i, batch) in batches.iter().enumerate() {
                if checkpoint_at == i {
                    let report = store.checkpoint().unwrap();
                    prop_assert_eq!(report.cut, i as u64);
                    checkpointed = i;
                }
                store
                    .apply_durable(batch.iter().map(GenOp::to_store_op).collect())
                    .unwrap();
            }
            if checkpoint_at >= batches.len() && checkpoint_at != usize::MAX {
                store.checkpoint().unwrap();
                checkpointed = batches.len();
            }
            store.shutdown();
        }

        // After a checkpoint, truncation leaves exactly one live segment;
        // without one, the single original segment holds everything.
        let segments = wal_segments(scratch.path());
        prop_assert_eq!(segments.len(), 1);
        let segment = &segments[0];
        let bytes = fs::read(segment).unwrap();
        let spans = frame_spans(&bytes);
        prop_assert_eq!(spans.len(), batches.len() - checkpointed);

        // Crash: cut the segment at a byte offset, or flip the byte there.
        let offset = (bytes.len() as u64 * u64::from(damage_permille) / 1000) as usize;
        let surviving_frames = if flip_instead_of_truncate && offset < bytes.len() {
            let mut damaged = bytes.clone();
            damaged[offset] ^= 0x40;
            fs::write(segment, &damaged).unwrap();
            // The frame containing the flipped byte dies, along with
            // everything after it (frames tile the segment, so the
            // position lookup always finds it).
            spans
                .iter()
                .position(|&(start, end)| start <= offset && offset < end)
                .unwrap_or(spans.len())
        } else {
            fs::write(segment, &bytes[..offset]).unwrap();
            spans.iter().take_while(|(_, end)| *end <= offset).count()
        };
        let survived = checkpointed + surviving_frames;
        let expected = &states[survived];

        for round in 0..2 {
            let store: DurableStore<i64, i64> =
                DurableStore::open_with_config(scratch.path(), test_config()).unwrap();
            let report = store.recovery().clone();
            prop_assert_eq!(
                report.checkpoint_cut, checkpointed as u64,
                "round {}", round
            );
            prop_assert_eq!(
                report.recovered_through, survived as u64,
                "round {}: wrong watermark", round
            );
            let recovered = RangeRead::collect_range(&store, RangeSpec::all());
            let want: Vec<(i64, i64)> =
                expected.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(recovered, want, "round {}", round);
            prop_assert_eq!(PointMap::len(&store), expected.len() as u64);
            store.store().check_invariants();
            store.shutdown();
        }
    }

    /// Crash-point sweep over the **checkpoint write path**: fail the
    /// `delta`-th storage operation of a checkpoint (temp-file creation,
    /// image append, tmp fsync, rename, dir fsync, WAL rotation,
    /// segment removal — whatever the offset lands on) and require that
    ///
    /// * a failed checkpoint reports an error but loses nothing — the WAL
    ///   is still intact, so recovery yields exactly the committed state;
    /// * a checkpoint that *succeeded* despite the injected fault (the
    ///   fault landed past the commit point, e.g. in post-rename GC) also
    ///   recovers exactly the committed state;
    /// * a failed checkpoint can simply be retried once storage heals.
    #[test]
    fn checkpoint_crash_points_never_lose_data(
        raw_batches in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..8), 1..8),
        delta in 0u64..14,
        retry_after in any::<bool>(),
    ) {
        let scratch = ScratchDir::new("recovery-ckpt-fault");
        let batches: Vec<Vec<GenOp>> =
            raw_batches.into_iter().map(dedup_batch).collect();
        let mut oracle = BTreeMap::new();
        for batch in &batches {
            for op in batch {
                op.apply_to_oracle(&mut oracle);
            }
        }
        let expected: Vec<(i64, i64)> =
            oracle.iter().map(|(k, v)| (*k, *v)).collect();

        let faulty = FaultyStorage::over_fs();
        {
            let store: DurableStore<i64, i64> = DurableStore::open_with_storage(
                scratch.path(),
                test_config(),
                std::sync::Arc::new(faulty.clone()),
            )
            .unwrap();
            for batch in &batches {
                store
                    .apply_durable(batch.iter().map(GenOp::to_store_op).collect())
                    .unwrap();
            }

            // One fault somewhere on the checkpoint's own storage path.
            faulty.schedule(Fault::nth(
                faulty.ops() + delta,
                FaultKind::Error(std::io::ErrorKind::Other),
            ));
            let first = store.checkpoint();
            faulty.heal();
            // A checkpoint failure never degrades or halts the journal…
            prop_assert!(!store.is_degraded());
            prop_assert!(!store.is_halted());
            if first.is_err() && retry_after {
                // …so the next attempt simply works.
                let report = store.checkpoint().unwrap();
                prop_assert_eq!(report.cut, batches.len() as u64);
            }
            store.shutdown();
        }

        let store: DurableStore<i64, i64> =
            DurableStore::open_with_config(scratch.path(), test_config()).unwrap();
        prop_assert_eq!(
            RangeRead::collect_range(&store, RangeSpec::all()),
            expected
        );
        prop_assert_eq!(
            store.recovery().recovered_through,
            batches.len() as u64,
            "every committed batch is reflected, checkpoint or not"
        );
        store.store().check_invariants();
    }
}

/// One logical op a concurrent writer issues against its private key
/// stripe. Offsets are relative to the writer's stripe base, so writers
/// never collide and each one can keep an exact local oracle.
#[derive(Debug, Clone, Copy)]
enum StripeOp {
    /// `PointMap::patch` with [`bump`].
    Patch(u8),
    /// `PointMap::compare_and_set`, crafted at execution time to hit
    /// (witness = the writer's own oracle value) or to miss (witness = a
    /// sentinel no op ever stores).
    Cas(u8, bool, i8),
    /// Point remove.
    Remove(u8),
    /// A two-key atomic batch: patch one key, upsert the other.
    Batch(u8, u8),
}

/// Keys per writer stripe.
const STRIPE_KEYS: u8 = 12;
/// Key distance between writer stripe bases.
const STRIPE_SPAN: i64 = 1_000;

fn stripe_op_strategy() -> impl Strategy<Value = StripeOp> {
    let off = 0u8..STRIPE_KEYS;
    prop_oneof![
        off.clone().prop_map(StripeOp::Patch),
        (off.clone(), any::<bool>(), -100i8..100).prop_map(|(o, hit, v)| StripeOp::Cas(o, hit, v)),
        off.clone().prop_map(StripeOp::Remove),
        (off.clone(), off).prop_map(|(a, b)| StripeOp::Batch(a, b)),
    ]
}

/// Runs one writer's ops, asserting every acknowledged outcome against a
/// thread-local oracle of its stripe, and returns the oracle *chain*:
/// `chain[i]` is the stripe state after the first `i` acknowledged ops.
/// Each `StripeOp` is exactly one committed batch, so after a crash the
/// recovered stripe must equal some entry of the chain.
fn run_stripe_writer(
    store: &DurableStore<i64, i64>,
    base: i64,
    ops: &[StripeOp],
) -> Vec<BTreeMap<i64, i64>> {
    let mut chain = vec![BTreeMap::new()];
    for (i, op) in ops.iter().enumerate() {
        let mut next: BTreeMap<i64, i64> = chain.last().unwrap().clone();
        match *op {
            StripeOp::Patch(off) => {
                let key = base + i64::from(off);
                let predicted = bump(next.get(&key).copied());
                let after = PointMap::patch(store, key, bump);
                assert_eq!(
                    after, predicted,
                    "patch outcome disagrees with the stripe oracle"
                );
                match predicted {
                    Some(v) => next.insert(key, v),
                    None => next.remove(&key),
                };
            }
            StripeOp::Cas(off, hit, v) => {
                let key = base + i64::from(off);
                let value = i64::from(v);
                let expect = if hit {
                    next.get(&key).copied()
                } else {
                    Some(i64::MIN)
                };
                let applied = PointMap::compare_and_set(store, key, expect, value);
                assert_eq!(applied, hit, "CAS outcome disagrees with the stripe oracle");
                if hit {
                    next.insert(key, value);
                }
            }
            StripeOp::Remove(off) => {
                let key = base + i64::from(off);
                let was_present = next.remove(&key).is_some();
                let outcome = PointMap::remove(store, &key);
                assert_eq!(
                    outcome.is_applied(),
                    was_present,
                    "remove outcome disagrees with the stripe oracle"
                );
            }
            StripeOp::Batch(a, b) => {
                let ka = base + i64::from(a);
                // Batches refuse duplicate mutation keys; nudge the second
                // key off the first (STRIPE_KEYS > 1, so they stay apart).
                let kb = if a == b {
                    base + i64::from((b + 1) % STRIPE_KEYS)
                } else {
                    base + i64::from(b)
                };
                let upsert = i as i64;
                let outcomes = store
                    .apply_durable(vec![
                        StoreOp::Patch {
                            key: ka,
                            patch: bump,
                        },
                        StoreOp::InsertOrReplace {
                            key: kb,
                            value: upsert,
                        },
                    ])
                    .expect("a two-distinct-key batch validates");
                let predicted = bump(next.get(&ka).copied());
                match predicted {
                    Some(v) => next.insert(ka, v),
                    None => next.remove(&ka),
                };
                let replaced = next.insert(kb, upsert);
                assert_eq!(outcomes[0], OpOutcome::Patched(predicted));
                assert_eq!(outcomes[1], OpOutcome::Replaced(replaced));
            }
        }
        chain.push(next);
    }
    chain
}

/// Splits a whole-store read back into per-writer stripes.
fn split_stripes(entries: &[(i64, i64)], writers: usize) -> Vec<BTreeMap<i64, i64>> {
    let mut stripes = vec![BTreeMap::new(); writers];
    for &(k, v) in entries {
        let w = (k / STRIPE_SPAN) as usize;
        assert!(w < writers, "key {k} outside every writer stripe");
        stripes[w].insert(k, v);
    }
    stripes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Crash a checkpoint **while Patch/CAS writers are running**, then
    /// crash the store itself, and require the acknowledged-prefix
    /// contract both times:
    ///
    /// * the injected checkpoint fault never degrades or halts the
    ///   journal, and a clean shutdown afterwards loses nothing — the
    ///   reopened state equals every writer's final local oracle;
    /// * after a WAL truncation crash, each recovered stripe equals a
    ///   *prefix* of that writer's acknowledged op sequence (each op is
    ///   one committed batch, so the two-key batches must also be
    ///   all-or-nothing across the crash);
    /// * reopening twice yields identical state and recovery reports —
    ///   replaying a checkpoint-overlapping suffix is idempotent.
    #[test]
    fn checkpoint_crashes_under_live_patch_cas_traffic(
        seqs in proptest::collection::vec(
            proptest::collection::vec(stripe_op_strategy(), 16..40), 2..4),
        delta in 0u64..12,
        retry_after in any::<bool>(),
        damage_permille in 0..=1000u32,
    ) {
        let scratch = ScratchDir::new("recovery-live-logical");
        let writers = seqs.len();
        let faulty = FaultyStorage::over_fs();
        let chains: Vec<Vec<BTreeMap<i64, i64>>>;
        {
            let store: DurableStore<i64, i64> = DurableStore::open_with_storage(
                scratch.path(),
                test_config(),
                Arc::new(faulty.clone()),
            )
            .unwrap();

            chains = std::thread::scope(|scope| {
                let handles: Vec<_> = seqs
                    .iter()
                    .enumerate()
                    .map(|(w, ops)| {
                        let store = &store;
                        scope.spawn(move || {
                            run_stripe_writer(store, w as i64 * STRIPE_SPAN, ops)
                        })
                    })
                    .collect();

                // Crash the checkpoint mid-flight: one fault lands a few
                // storage ops ahead — on the checkpoint's own path or on a
                // concurrent WAL append, whichever gets there first. A hit
                // append is absorbed by the journal's retry loop, so the
                // writers above must never observe an error either way.
                faulty.schedule(Fault::nth(
                    faulty.ops() + delta,
                    FaultKind::Error(std::io::ErrorKind::Other),
                ));
                let first = store.checkpoint();
                faulty.heal();
                assert!(!store.is_degraded());
                assert!(!store.is_halted());
                if first.is_err() && retry_after {
                    // Healed storage: the retried checkpoint succeeds even
                    // under live traffic.
                    store.checkpoint().expect("retried checkpoint");
                }

                handles
                    .into_iter()
                    .map(|h| h.join().expect("writer thread"))
                    .collect()
            });
            store.shutdown();
        }

        // Clean shutdown first: every acknowledged op survives, fault or
        // no fault, so the state is exactly the union of final oracles.
        {
            let store: DurableStore<i64, i64> =
                DurableStore::open_with_config(scratch.path(), test_config()).unwrap();
            let recovered = RangeRead::collect_range(&store, RangeSpec::all());
            let stripes = split_stripes(&recovered, writers);
            for (w, chain) in chains.iter().enumerate() {
                prop_assert_eq!(
                    &stripes[w],
                    chain.last().unwrap(),
                    "writer {}: an acknowledged op vanished across clean shutdown",
                    w
                );
            }
            store.store().check_invariants();
            store.shutdown();
        }

        // Now the crash: truncate the newest WAL segment at a random byte
        // offset and require every recovered stripe to be a prefix of its
        // writer's acknowledged sequence — twice, identically.
        let segments = wal_segments(scratch.path());
        let segment = segments.last().unwrap();
        let bytes = fs::read(segment).unwrap();
        let offset = (bytes.len() as u64 * u64::from(damage_permille) / 1000) as usize;
        fs::write(segment, &bytes[..offset]).unwrap();

        let mut rounds = Vec::new();
        for round in 0..2 {
            let store: DurableStore<i64, i64> =
                DurableStore::open_with_config(scratch.path(), test_config()).unwrap();
            let recovered = RangeRead::collect_range(&store, RangeSpec::all());
            let stripes = split_stripes(&recovered, writers);
            for (w, chain) in chains.iter().enumerate() {
                prop_assert!(
                    chain.contains(&stripes[w]),
                    "round {}, writer {}: recovered stripe {:?} is not a prefix state \
                     of the acknowledged op sequence",
                    round,
                    w,
                    stripes[w]
                );
            }
            rounds.push((store.recovery().clone(), recovered));
            store.store().check_invariants();
            store.shutdown();
        }
        prop_assert_eq!(rounds[0].0.recovered_through, rounds[1].0.recovered_through);
        prop_assert_eq!(rounds[0].0.checkpoint_cut, rounds[1].0.checkpoint_cut);
        prop_assert_eq!(&rounds[0].1, &rounds[1].1, "reopen is not idempotent");
    }
}

/// Checkpoints taken while writers are running never lose or duplicate a
/// committed op: the reopened state equals the survivor state the writers
/// left behind, whichever checkpoint the recovery started from.
#[test]
fn online_checkpoints_under_concurrent_writers_lose_nothing() {
    let scratch = ScratchDir::new("recovery-online");
    let config = DurableConfig {
        shards: 4,
        fsync: false,
        ..DurableConfig::default()
    };
    let survivor_entries;
    {
        let store: Arc<DurableStore<i64, i64>> =
            Arc::new(DurableStore::open_with_config(scratch.path(), config.clone()).unwrap());
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    // Disjoint key stripes; every op is acknowledged, so
                    // every op must survive.
                    let base = w as i64 * 1_000;
                    for i in 0..300i64 {
                        let key = base + (i % 100);
                        if i % 3 == 2 {
                            PointMap::remove(&*store, &key);
                        } else {
                            PointMap::replace(&*store, key, i);
                        }
                    }
                })
            })
            .collect();
        for _ in 0..3 {
            let report = store.checkpoint().unwrap();
            assert!(report.entries <= 400, "stripes cap the live set");
        }
        for worker in workers {
            worker.join().unwrap();
        }
        // One more checkpoint at quiescence plus a couple of tail writes,
        // so recovery exercises checkpoint + non-empty suffix replay.
        store.checkpoint().unwrap();
        assert!(PointMap::insert(&*store, -1, -1).is_applied());
        assert!(PointMap::insert(&*store, -2, -2).is_applied());
        survivor_entries = store.store().entries_quiescent();
        let stats = store.stats();
        assert_eq!(stats.checkpoints, 4);
        assert_eq!(stats.wal_appends, 4 * 300 + 2);
        store.shutdown();
    }

    let store: DurableStore<i64, i64> =
        DurableStore::open_with_config(scratch.path(), config).unwrap();
    assert_eq!(store.recovery().replayed_records, 2);
    let recovered = RangeRead::collect_range(&store, RangeSpec::all());
    assert_eq!(recovered, survivor_entries);
    store.store().check_invariants();
}
