//! Cross-crate integration tests: every tree in the workspace must implement
//! the same abstract ordered-set semantics.
//!
//! Sequential equivalence is checked exhaustively (identical random operation
//! sequences applied to the wait-free tree, the wait-free trie, the
//! persistent baseline, the lock-based baseline, the lock-free linear
//! baseline, the sequential tree and the `BTreeMap` oracle must produce
//! identical results at every step), including both root-queue variants of
//! the wait-free tree.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::core::{RootQueueKind, TreeConfig, WaitFreeTree};
use wait_free_range_trees::lockbased::LockedRangeTree;
use wait_free_range_trees::lockfree::LockFreeBst;
use wait_free_range_trees::persistent::PersistentRangeTree;
use wait_free_range_trees::seq::{ReferenceMap, SeqRangeTree};
use wait_free_range_trees::trie::WaitFreeTrie;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(i64),
    Replace(i64),
    Remove(i64),
    Contains(i64),
    Count(i64, i64),
    Collect(i64, i64),
}

fn apply_everywhere(ops: &[Op]) {
    let wait_free: WaitFreeTree<i64> = WaitFreeTree::new();
    let wait_free_wf: WaitFreeTree<i64> = WaitFreeTree::with_config(TreeConfig {
        root_queue: RootQueueKind::WaitFree { slots: 4 },
        ..TreeConfig::default()
    });
    let trie: WaitFreeTrie<i64> = WaitFreeTrie::new();
    let lockfree: LockFreeBst<i64> = LockFreeBst::new();
    let persistent: PersistentRangeTree<i64> = PersistentRangeTree::new();
    let locked: LockedRangeTree<i64> = LockedRangeTree::new();
    let mut seq: SeqRangeTree<i64> = SeqRangeTree::new();
    let mut oracle: ReferenceMap<i64, ()> = ReferenceMap::new();

    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => {
                let expect = oracle.insert(k, ());
                assert_eq!(
                    wait_free.insert(k, ()),
                    expect,
                    "wait-free insert step {step}"
                );
                assert_eq!(
                    wait_free_wf.insert(k, ()),
                    expect,
                    "wf-root insert step {step}"
                );
                assert_eq!(trie.insert(k, ()), expect, "trie insert step {step}");
                assert_eq!(
                    lockfree.insert(k, ()),
                    expect,
                    "lock-free insert step {step}"
                );
                assert_eq!(
                    persistent.insert(k, ()),
                    expect,
                    "persistent insert step {step}"
                );
                assert_eq!(locked.insert(k, ()), expect, "locked insert step {step}");
                assert_eq!(seq.insert(k, ()), expect, "seq insert step {step}");
            }
            Op::Replace(k) => {
                // The upsert on a unit-valued set: observable as "was the
                // key present before?" — BTreeMap::insert semantics.
                let expect = oracle.insert_or_replace(k, ()).is_some();
                assert_eq!(
                    wait_free.insert_or_replace(k, ()).is_some(),
                    expect,
                    "wait-free replace step {step}"
                );
                assert_eq!(
                    wait_free_wf.insert_or_replace(k, ()).is_some(),
                    expect,
                    "wf-root replace step {step}"
                );
                assert_eq!(
                    trie.insert_or_replace(k, ()).is_some(),
                    expect,
                    "trie replace step {step}"
                );
                assert_eq!(
                    lockfree.insert_or_replace(k, ()).is_some(),
                    expect,
                    "lock-free replace step {step}"
                );
                assert_eq!(
                    persistent.insert_or_replace(k, ()).is_some(),
                    expect,
                    "persistent replace step {step}"
                );
                assert_eq!(
                    locked.insert_or_replace(k, ()).is_some(),
                    expect,
                    "locked replace step {step}"
                );
                assert_eq!(
                    seq.insert_or_replace(k, ()).is_some(),
                    expect,
                    "seq replace step {step}"
                );
            }
            Op::Remove(k) => {
                let expect = oracle.remove(&k);
                assert_eq!(wait_free.remove(&k), expect, "wait-free remove step {step}");
                assert_eq!(
                    wait_free_wf.remove(&k),
                    expect,
                    "wf-root remove step {step}"
                );
                assert_eq!(trie.remove(&k), expect, "trie remove step {step}");
                assert_eq!(lockfree.remove(&k), expect, "lock-free remove step {step}");
                assert_eq!(
                    persistent.remove(&k),
                    expect,
                    "persistent remove step {step}"
                );
                assert_eq!(locked.remove(&k), expect, "locked remove step {step}");
                assert_eq!(seq.remove(&k), expect, "seq remove step {step}");
            }
            Op::Contains(k) => {
                let expect = oracle.contains(&k);
                assert_eq!(
                    wait_free.contains(&k),
                    expect,
                    "wait-free contains step {step}"
                );
                assert_eq!(
                    wait_free_wf.contains(&k),
                    expect,
                    "wf-root contains step {step}"
                );
                assert_eq!(trie.contains(&k), expect, "trie contains step {step}");
                assert_eq!(
                    lockfree.contains(&k),
                    expect,
                    "lock-free contains step {step}"
                );
                assert_eq!(
                    persistent.contains(&k),
                    expect,
                    "persistent contains step {step}"
                );
                assert_eq!(locked.contains(&k), expect, "locked contains step {step}");
                assert_eq!(seq.contains(&k), expect, "seq contains step {step}");
            }
            Op::Count(lo, hi) => {
                let expect = oracle.count(lo, hi);
                assert_eq!(
                    wait_free.count(lo, hi),
                    expect,
                    "wait-free count step {step}"
                );
                assert_eq!(
                    wait_free_wf.count(lo, hi),
                    expect,
                    "wf-root count step {step}"
                );
                assert_eq!(trie.count(lo, hi), expect, "trie count step {step}");
                assert_eq!(
                    lockfree.count(lo, hi),
                    expect,
                    "lock-free count step {step}"
                );
                assert_eq!(
                    persistent.count(lo, hi),
                    expect,
                    "persistent count step {step}"
                );
                assert_eq!(locked.count(lo, hi), expect, "locked count step {step}");
                assert_eq!(seq.count(lo, hi), expect, "seq count step {step}");
            }
            Op::Collect(lo, hi) => {
                let expect = oracle.collect_range(lo, hi);
                assert_eq!(
                    wait_free.collect_range(lo, hi),
                    expect,
                    "wait-free collect step {step}"
                );
                assert_eq!(
                    trie.collect_range(lo, hi),
                    expect,
                    "trie collect step {step}"
                );
                assert_eq!(
                    lockfree.collect_range(lo, hi),
                    expect,
                    "lock-free collect step {step}"
                );
                assert_eq!(
                    persistent.collect_range(lo, hi),
                    expect,
                    "persistent collect step {step}"
                );
                assert_eq!(
                    locked.collect_range(lo, hi),
                    expect,
                    "locked collect step {step}"
                );
                assert_eq!(seq.collect_range(lo, hi), expect, "seq collect step {step}");
            }
        }
    }

    // Final-state agreement and structural invariants.
    let expect_entries = oracle.entries();
    assert_eq!(wait_free.entries_quiescent(), expect_entries);
    assert_eq!(trie.entries_quiescent(), expect_entries);
    assert_eq!(lockfree.entries_quiescent(), expect_entries);
    assert_eq!(persistent.entries(), expect_entries);
    assert_eq!(locked.entries(), expect_entries);
    assert_eq!(seq.entries(), expect_entries);
    wait_free.check_invariants();
    wait_free_wf.check_invariants();
    trie.check_invariants();
    lockfree.check_invariants();
    persistent.check_invariants();
    locked.check_invariants();
    seq.check_invariants();
}

#[test]
fn random_sequences_agree_across_all_implementations() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for round in 0..5 {
        let ops: Vec<Op> = (0..1_500)
            .map(|_| {
                let k = rng.gen_range(0..200);
                match rng.gen_range(0..6) {
                    0 | 1 => Op::Insert(k),
                    5 => Op::Replace(k),
                    2 => Op::Remove(k),
                    3 => Op::Contains(k),
                    _ => {
                        let hi = k + rng.gen_range(0i64..100);
                        if rng.gen_bool(0.7) {
                            Op::Count(k, hi)
                        } else {
                            Op::Collect(k, hi)
                        }
                    }
                }
            })
            .collect();
        apply_everywhere(&ops);
        let _ = round;
    }
}

#[test]
fn adversarial_sorted_and_reversed_sequences() {
    // Sorted insertions, full removal, re-insertion in reverse: stresses the
    // balancing logic of every implementation the same way.
    let mut ops = Vec::new();
    for k in 0..400 {
        ops.push(Op::Insert(k));
    }
    ops.push(Op::Count(0, 399));
    for k in 0..400 {
        if k % 2 == 0 {
            ops.push(Op::Remove(k));
        }
    }
    ops.push(Op::Count(0, 399));
    for k in (0..400).rev() {
        ops.push(Op::Insert(k));
        ops.push(Op::Contains(k));
    }
    ops.push(Op::Collect(0, 399));
    apply_everywhere(&ops);
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..150).prop_map(Op::Insert),
        (0i64..150).prop_map(Op::Replace),
        (0i64..150).prop_map(Op::Remove),
        (0i64..150).prop_map(Op::Contains),
        (0i64..150, 0i64..150).prop_map(|(a, b)| Op::Count(a.min(b), a.max(b))),
        (0i64..150, 0i64..150).prop_map(|(a, b)| Op::Collect(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property form of the equivalence check (smaller sequences, many seeds).
    #[test]
    fn proptest_cross_implementation_equivalence(ops in vec(op_strategy(), 1..250)) {
        apply_everywhere(&ops);
    }

    /// Value-carrying oracle for the atomic upsert: `insert_or_replace` on
    /// the descriptor-based trees must behave exactly like
    /// `BTreeMap::insert` — same returned prior value, same final contents.
    #[test]
    fn proptest_insert_or_replace_matches_btreemap_insert(
        steps in vec((0i64..64, -1000i64..1000), 1..200)
    ) {
        use std::collections::BTreeMap;
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        let wait_free: WaitFreeTree<i64, i64> = WaitFreeTree::new();
        let trie: WaitFreeTrie<i64, i64> = WaitFreeTrie::new();
        let persistent: PersistentRangeTree<i64, i64> = PersistentRangeTree::new();
        for (step, &(k, v)) in steps.iter().enumerate() {
            let expect = oracle.insert(k, v);
            prop_assert_eq!(
                wait_free.insert_or_replace(k, v),
                expect,
                "wait-free upsert step {}",
                step
            );
            prop_assert_eq!(
                trie.insert_or_replace(k, v),
                expect,
                "trie upsert step {}",
                step
            );
            prop_assert_eq!(
                persistent.insert_or_replace(k, v),
                expect,
                "persistent upsert step {}",
                step
            );
        }
        let expect_entries: Vec<(i64, i64)> =
            oracle.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(wait_free.entries_quiescent(), expect_entries.clone());
        prop_assert_eq!(trie.entries_quiescent(), expect_entries.clone());
        prop_assert_eq!(persistent.entries(), expect_entries);
        wait_free.check_invariants();
        trie.check_invariants();
        persistent.check_invariants();
    }
}
