//! Streaming scan cursors against their oracles.
//!
//! The `RangeScan` API promises three things (see `wft-api::scan`):
//! ascending duplicate-free keyset pagination no matter what writers do, a
//! full `ScanConsistency::Snapshot` drain equal to one `collect_range_at`
//! of the cursor's token, and transparent suffix-only resumption otherwise.
//! These tests pin all three:
//!
//! * a proptest replays random operation sequences against a `BTreeMap`
//!   and drains cursors at varied chunk sizes (including `limit == 1` and
//!   `limit > answer`) on the sharded store under both per-shard read
//!   paths — every quiescent drain must equal the oracle listing and stay
//!   `Snapshot`;
//! * under real concurrency, striped writers insert residue classes that
//!   span every shard while readers page through the whole keyspace: a
//!   torn chunk would surface as a duplicate or a backwards step, and a
//!   drain that claims `Snapshot` must additionally show gap-free
//!   per-writer prefixes (the same oracle the one-shot snapshot reads are
//!   held to);
//! * the `O(log N + limit)` chunk primitive is observed through the new
//!   `fast_range_early_exits` counter on tree and trie.
//!
//! (Adversarial interleavings of whole drains are machine-checked by the
//! `ChunkedScan` op in `tests/linearizability.rs`.)

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::prelude::*;

fn store_config(read_path: ReadPath) -> StoreConfig {
    StoreConfig {
        tree: TreeConfig {
            read_path,
            ..TreeConfig::default()
        },
        ..StoreConfig::default()
    }
}

fn oracle_entries(oracle: &BTreeMap<i64, i64>, a: i64, b: i64) -> Vec<(i64, i64)> {
    if a > b {
        Vec::new()
    } else {
        oracle.range(a..=b).map(|(k, v)| (*k, *v)).collect()
    }
}

/// One step of the sequential oracle workload.
#[derive(Debug, Clone)]
enum Step {
    Insert(i64, i64),
    Replace(i64, i64),
    Remove(i64),
    /// Drain one cursor over `[a, b]` in chunks of the given size.
    Scan(i64, i64, usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let key = -60i64..60;
    prop_oneof![
        (key.clone(), any::<i64>()).prop_map(|(k, v)| Step::Insert(k, v)),
        (key.clone(), any::<i64>()).prop_map(|(k, v)| Step::Replace(k, v)),
        key.clone().prop_map(Step::Remove),
        // Chunk sizes deliberately include 1 (every entry its own page) and
        // 200 (always larger than the 120-key domain: one-page drains).
        (
            key.clone(),
            key,
            prop_oneof![Just(1usize), 2..6usize, Just(200)]
        )
            .prop_map(|(a, b, chunk)| Step::Scan(a, b, chunk)),
    ]
}

proptest! {
    /// Quiescent cursor drains equal the `BTreeMap` listing at every chunk
    /// size, stay `Snapshot` with zero resumes, and agree with
    /// `collect_range_at` of the cursor's own token — on both per-shard
    /// read paths of a four-shard store.
    #[test]
    fn store_drains_agree_with_btreemap(
        steps in proptest::collection::vec(step_strategy(), 1..80),
        descriptor_reads in any::<bool>(),
    ) {
        let read_path = if descriptor_reads { ReadPath::Descriptor } else { ReadPath::Fast };
        let store: ShardedStore<i64, i64> =
            ShardedStore::with_boundaries_and_config(vec![-20, 0, 20], store_config(read_path));
        let mut oracle = BTreeMap::new();
        for step in &steps {
            match *step {
                Step::Insert(k, v) => {
                    let expect = !oracle.contains_key(&k);
                    if expect {
                        oracle.insert(k, v);
                    }
                    prop_assert_eq!(store.insert(k, v), expect);
                }
                Step::Replace(k, v) => {
                    let expect = oracle.insert(k, v);
                    prop_assert_eq!(store.insert_or_replace(k, v), expect);
                }
                Step::Remove(k) => {
                    let expect = oracle.remove(&k);
                    prop_assert_eq!(store.remove_entry(&k), expect);
                }
                Step::Scan(a, b, chunk) => {
                    let mut cursor = store.scan(RangeSpec::inclusive(a, b));
                    let token = cursor.token();
                    let mut drained: Vec<(i64, i64)> = Vec::new();
                    loop {
                        let page = cursor.next_chunk(chunk);
                        if page.is_empty() {
                            break;
                        }
                        prop_assert!(page.len() <= chunk, "page exceeded its limit");
                        drained.extend(page);
                    }
                    prop_assert_eq!(&drained, &oracle_entries(&oracle, a, b));
                    prop_assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
                    prop_assert_eq!(cursor.resumes(), 0);
                    prop_assert!(cursor.is_exhausted());
                    // The acceptance criterion verbatim: a Snapshot drain
                    // equals one collect_range_at of the same token.
                    prop_assert_eq!(
                        store.collect_range_at(&token, RangeSpec::inclusive(a, b)),
                        Some(drained)
                    );
                }
            }
        }
        store.check_invariants();
    }

    /// The same oracle for the single wait-free tree through the shared
    /// front cursor, plus the limited collect primitive directly: the
    /// `limit` smallest entries are always a prefix of the full listing.
    #[test]
    fn tree_drains_and_limited_collects_agree_with_btreemap(
        keys in proptest::collection::vec(-300i64..300, 0..120),
        a in -300i64..300,
        width in 0i64..600,
        chunk in 1usize..8,
        limit in 0usize..140,
    ) {
        let tree: WaitFreeTree<i64, i64> =
            WaitFreeTree::from_entries(keys.iter().map(|&k| (k, k * 3)));
        let oracle: BTreeMap<i64, i64> = keys.iter().map(|&k| (k, k * 3)).collect();
        let b = a.saturating_add(width);

        let (drained, consistency) = tree.scan_collect(RangeSpec::inclusive(a, b), chunk);
        prop_assert_eq!(&drained, &oracle_entries(&oracle, a, b));
        prop_assert_eq!(consistency, ScanConsistency::Snapshot);

        let limited = tree.collect_range_limited(a, b, limit);
        let full = oracle_entries(&oracle, a, b);
        let expect: Vec<(i64, i64)> = full.iter().take(limit).copied().collect();
        prop_assert_eq!(limited, expect);
    }
}

/// Chunk-size edge cases on a single tree: `limit == 0`, `limit == 1`,
/// `limit == answer` and `limit > answer` all paginate correctly.
#[test]
fn chunk_size_edges() {
    let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..10).map(|k| (k, ())));
    let mut cursor = tree.scan(RangeSpec::all());
    assert!(cursor.next_chunk(0).is_empty(), "limit 0 yields nothing");
    assert!(
        !cursor.is_exhausted(),
        "limit 0 must not advance the cursor"
    );
    assert_eq!(cursor.next_chunk(1), vec![(0, ())]);
    // Exactly the remaining answer: the cursor cannot yet prove exhaustion…
    assert_eq!(cursor.next_chunk(9).len(), 9);
    // …so one more (empty) chunk closes it.
    assert!(cursor.next_chunk(4).is_empty());
    assert!(cursor.is_exhausted());
    assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);

    // limit > answer drains in one call and proves exhaustion immediately.
    let mut cursor = tree.scan(RangeSpec::from_bounds(3..7));
    assert_eq!(cursor.next_chunk(1000).len(), 4);
    assert!(cursor.is_exhausted());
}

/// A write between chunks re-anchors the cursor: the drain degrades to
/// `Resumed`, never duplicates or goes backwards, and the suffix reflects
/// the new state.
#[test]
fn writes_between_chunks_resume_without_duplicates() {
    let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..100).map(|k| (k, ())));
    let mut cursor = tree.scan(RangeSpec::all());
    let first = cursor.next_chunk(10);
    assert_eq!(first.len(), 10);
    assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);

    // Mutate ahead of and behind the resume point.
    tree.remove(&50);
    tree.insert(-5, ()); // behind: must NOT appear (keyset pagination)
    tree.insert(200, ()); // ahead: must appear

    let rest = cursor.drain(16);
    assert_eq!(cursor.consistency(), ScanConsistency::Resumed);
    assert!(cursor.resumes() >= 1);
    let keys: Vec<i64> = rest.iter().map(|(k, ())| *k).collect();
    let expect: Vec<i64> = (10..100).filter(|k| *k != 50).chain([200]).collect();
    assert_eq!(keys, expect, "suffix re-read at the fresh front");
}

/// A write landing between `scan()` and the first yielded chunk does not
/// doom the drain: nothing has been yielded, so the cursor re-anchors its
/// *token* at the fresh front and the drain stays `Snapshot` — against the
/// refreshed token — on both the shared cursor and the store's merge
/// cursor.
#[test]
fn pre_yield_writes_refresh_the_token_instead_of_degrading() {
    let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..50).map(|k| (k, ())));
    let mut cursor = tree.scan(RangeSpec::all());
    let stale_token = cursor.token();
    tree.insert(100, ());
    let drained = cursor.drain(8);
    assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
    assert_eq!(cursor.resumes(), 0);
    assert_eq!(drained.len(), 51, "the pre-yield write is included");
    assert_ne!(cursor.token(), stale_token, "the token was re-anchored");
    assert_eq!(
        tree.collect_range_at(&cursor.token(), RangeSpec::all()),
        Some(drained)
    );

    // Store cursor: the write must land in the shard the FIRST chunk reads
    // (a later shard expires only after pages were yielded — legitimately
    // `Resumed`), so write below every prefilled key: shard 0.
    let store: ShardedStore<i64> = ShardedStore::from_entries((0..400).map(|k| (k, ())), 4);
    let mut cursor = store.scan(RangeSpec::all());
    store.insert(-100, ());
    let drained = cursor.drain(64);
    assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
    assert_eq!(drained.len(), 401);
    assert_eq!(drained.first(), Some(&(-100, ())));
    assert_eq!(
        store.store_stats().scan_resumes,
        0,
        "a pre-yield re-anchor is not a resume"
    );
    assert_eq!(
        store.collect_range_at(&cursor.token(), RangeSpec::all()),
        Some(drained)
    );
}

/// Driving a drain with a zero chunk is a caller bug, not an empty range:
/// the drivers refuse instead of presenting nothing as a snapshot.
#[test]
#[should_panic(expected = "positive chunk")]
fn zero_chunk_drains_are_rejected() {
    let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..10).map(|k| (k, ())));
    let _ = tree.scan_collect(RangeSpec::all(), 0);
}

/// The cursor's token and the one-shot snapshot reads agree: a quiescent
/// drain of tree, trie and store equals `collect_range_at` of the token.
#[test]
fn snapshot_drain_equals_token_read_for_every_shape() {
    let spec = RangeSpec::from_bounds(10..250);

    let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..300).map(|k| (k, ())));
    let mut cursor = tree.scan(spec);
    let token = cursor.token();
    let drained = cursor.drain(7);
    assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
    assert_eq!(tree.collect_range_at(&token, spec), Some(drained));

    let trie: WaitFreeTrie<u64> = WaitFreeTrie::from_entries((0..300u64).map(|k| (k, ())));
    let spec_u = RangeSpec::from_bounds(10u64..250);
    let mut cursor = trie.scan(spec_u);
    let token = cursor.token();
    let drained = cursor.drain(64);
    assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
    assert_eq!(trie.collect_range_at(&token, spec_u), Some(drained));

    let store: ShardedStore<i64> = ShardedStore::from_entries((0..300).map(|k| (k, ())), 4);
    let mut cursor = store.scan(spec);
    let token = cursor.token();
    let drained = cursor.drain(16);
    assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
    assert_eq!(store.collect_range_at(&token, spec), Some(drained));
}

/// The chunk primitive early-exits instead of collecting the whole answer:
/// observed through `fast_range_early_exits` on both tree and trie.
#[test]
fn limited_collect_early_exit_is_observable() {
    let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..10_000).map(|k| (k, ())));
    let chunk = tree.collect_range_limited(0, 9_999, 100);
    assert_eq!(chunk.len(), 100);
    assert_eq!(chunk.last(), Some(&(99, ())));
    let stats = tree.stats();
    assert!(
        stats.fast_range_early_exits >= 1,
        "a 100-of-10000 chunk must early-exit, got {stats:?}"
    );
    // An unlimited collect never early-exits.
    let before = tree.stats().fast_range_early_exits;
    assert_eq!(tree.collect_range(0, 9_999).len(), 10_000);
    assert_eq!(tree.stats().fast_range_early_exits, before);

    let trie: WaitFreeTrie<u64> = WaitFreeTrie::from_entries((0..10_000u64).map(|k| (k, ())));
    let chunk = trie.collect_range_limited(0, 9_999, 100);
    assert_eq!(chunk.len(), 100);
    assert!(trie.stats().fast_range_early_exits >= 1);

    // Paging through the tree via the cursor keeps early-exiting.
    let mut cursor = tree.scan(RangeSpec::all());
    while !cursor.next_chunk(256).is_empty() {}
    assert!(tree.stats().fast_range_early_exits > before);
}

/// Striped concurrent writers + paginating readers on the store: every
/// writer inserts its residue class `{w, w + W, …}` (spanning every shard)
/// in ascending order while readers drain full-range cursors in small
/// chunks. A torn chunk would show up as a duplicate or a backwards step;
/// a drain that claims `Snapshot` must additionally show gap-free
/// per-writer prefixes.
#[test]
fn concurrent_cursor_drains_never_tear() {
    const WRITERS: i64 = 3;
    const PER_WRITER: i64 = 300;
    const KEYS: i64 = WRITERS * PER_WRITER;
    for read_path in [ReadPath::Fast, ReadPath::Descriptor] {
        let store: Arc<ShardedStore<i64>> = Arc::new(ShardedStore::with_boundaries_and_config(
            vec![KEYS / 4, KEYS / 2, 3 * KEYS / 4],
            store_config(read_path),
        ));
        let done = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        assert!(store.insert(w + i * WRITERS, ()));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let store = Arc::clone(&store);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x5CA7 + r as u64);
                    let mut snapshot_drains = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let chunk = [1usize, 7, 32, 1024][rng.gen_range(0..4usize)];
                        let mut cursor = store.scan(RangeSpec::inclusive(0, KEYS - 1));
                        let mut keys: Vec<i64> = Vec::new();
                        loop {
                            let page = cursor.next_chunk(chunk);
                            if page.is_empty() {
                                break;
                            }
                            assert!(page.len() <= chunk);
                            keys.extend(page.into_iter().map(|(k, ())| k));
                        }
                        // Keyset pagination: strictly ascending, no
                        // duplicates, never backwards — even across resumes.
                        assert!(
                            keys.windows(2).all(|p| p[0] < p[1]),
                            "chunked drain yielded a duplicate or went backwards"
                        );
                        if cursor.consistency() == ScanConsistency::Snapshot {
                            snapshot_drains += 1;
                            // A snapshot drain must be gap-free per writer:
                            // a hole means a chunk tore across shards.
                            let mut next_expected = [0i64; WRITERS as usize];
                            for key in &keys {
                                let w = (key % WRITERS) as usize;
                                assert_eq!(
                                    key / WRITERS,
                                    next_expected[w],
                                    "writer {w}'s prefix has a hole before key {key}"
                                );
                                next_expected[w] += 1;
                            }
                        }
                    }
                    snapshot_drains
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        // Quiescent again: the retrying driver must now produce the whole
        // keyspace as one snapshot, and the front-riding len agrees.
        let all = store.scan_snapshot(RangeSpec::all(), 64);
        assert_eq!(all.len(), KEYS as usize);
        assert_eq!(store.len(), KEYS as u64);
        assert_eq!(store.stitched_len(), KEYS as u64);
        store.check_invariants();
    }
}

/// `ShardedStore::len` now rides the global front: it is exact and
/// linearizable (monotone under insert-only writers), and the pre-front sum
/// survives as `stitched_len`.
#[test]
fn store_len_rides_the_front() {
    let store: Arc<ShardedStore<i64>> =
        Arc::new(ShardedStore::from_entries((0..100).map(|k| (k, ())), 4));
    assert_eq!(store.len(), 100);
    assert_eq!(store.stitched_len(), 100);
    let acquires_before = store.store_stats().snapshot_acquires;
    store.len();
    assert!(
        store.store_stats().snapshot_acquires > acquires_before,
        "a multi-shard len acquires a front cut"
    );

    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for k in 100..600 {
                store.insert(k, ());
            }
        })
    };
    let mut last = 100u64;
    while last < 600 {
        let len = store.len();
        assert!(
            len >= last,
            "front-riding len went backwards: {last} -> {len}"
        );
        last = len;
    }
    writer.join().unwrap();
    assert_eq!(store.len(), 600);
}

/// Composite `(major, minor)` keys work end to end: lexicographic ranges,
/// carry at component edges, and streaming scans over one major key.
#[test]
fn tuple_keys_scan_lexicographically() {
    let tree: WaitFreeTree<(i32, u8), i64> = WaitFreeTree::from_entries(
        (0..6i32).flat_map(|major| (0..10u8).map(move |minor| ((major, minor), i64::from(minor)))),
    );
    // One major key's whole sub-range, via exclusive upper bound + carry.
    let spec = RangeSpec::from_bounds((2, 0)..(3, 0));
    assert_eq!(RangeRead::count(&tree, spec), 10);
    let (entries, consistency) = tree.scan_collect(spec, 3);
    assert_eq!(consistency, ScanConsistency::Snapshot);
    assert_eq!(entries.len(), 10);
    assert!(entries.iter().all(|((major, _), _)| *major == 2));
    // A range crossing the minor-component edge pages correctly too.
    let crossing = RangeSpec::inclusive((1, 250), (2, 3));
    let keys: Vec<(i32, u8)> = tree
        .scan_snapshot(crossing, 2)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    assert_eq!(keys, vec![(2, 0), (2, 1), (2, 2), (2, 3)]);
}

/// Every backend in the workspace answers the chunked-scan drivers
/// coherently (shared cursor or native store cursor alike).
#[test]
fn all_backends_drain_chunked_scans() {
    use wait_free_range_trees::workload::TreeImpl;
    let prefill: Vec<i64> = (0..100).collect();
    for imp in TreeImpl::ALL {
        let set = imp.build(&prefill, 4);
        for chunk in [1usize, 7, 100, 1000] {
            assert_eq!(
                set.chunked_scan_snapshot(0, 99, chunk),
                (0..100).collect::<Vec<_>>(),
                "{}: chunk size {chunk}",
                imp.name()
            );
        }
        let (count, snapshot) = set.chunked_scan_count(25, 74, 8);
        assert_eq!(count, 50, "{}", imp.name());
        assert!(snapshot, "{}: quiescent drains stay Snapshot", imp.name());
        assert!(set.chunked_scan_snapshot(50, 10, 4).is_empty());
    }
}
