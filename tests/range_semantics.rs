//! Cross-implementation range-semantics regression tests.
//!
//! The `wft-api` contract (see `RangeSpec::to_closed`) says: an empty or
//! inverted range — `min > max`, a half-open range with equal endpoints, an
//! exclusive bound at the edge of the key domain — yields the **identity
//! aggregate, a zero count and an empty listing**, identically on every
//! backend. Before the API redesign this behaviour was per-implementation
//! folklore; this suite pins it across the wait-free tree (both root
//! queues), the trie, all three baselines and the sharded store, through
//! both the trait family and the harness adapter.

use std::ops::Bound;

use wait_free_range_trees::prelude::*;
use wait_free_range_trees::workload::TreeImpl;

/// Inverted and degenerate closed ranges, as `(min, max)` pairs.
const INVERTED: [(i64, i64); 4] = [(7, 3), (1, 0), (i64::MAX, i64::MIN), (50, -50)];

#[test]
fn inverted_ranges_are_empty_on_every_implementation() {
    let prefill: Vec<i64> = (0..64).collect();
    for imp in TreeImpl::ALL {
        let set = imp.build(&prefill, 4);
        for (min, max) in INVERTED {
            assert_eq!(
                set.count(min, max),
                0,
                "{}: count({min}, {max}) on an inverted range",
                imp.name()
            );
            assert_eq!(
                set.count_via_collect(min, max),
                0,
                "{}: collect({min}, {max}) on an inverted range",
                imp.name()
            );
        }
        // A degenerate single-key range still answers normally.
        assert_eq!(set.count(5, 5), 1, "{}", imp.name());
    }
}

/// Every backend, driven through the `RangeRead` trait itself with the full
/// `Bound` vocabulary (not just inclusive pairs).
fn assert_range_read_contract<T>(map: &T, label: &str)
where
    T: RangeRead<i64, (), Agg = u64> + PointMap<i64, ()>,
{
    for (min, max) in INVERTED {
        let spec = RangeSpec::inclusive(min, max);
        assert_eq!(map.range_agg(spec), 0, "{label}: identity aggregate");
        assert_eq!(map.count(spec), 0, "{label}: zero count");
        assert!(map.collect_range(spec).is_empty(), "{label}: empty listing");
    }
    // Half-open empty range.
    assert_eq!(map.count(RangeSpec::from_bounds(5..5)), 0, "{label}: 5..5");
    // Exclusive bound at the domain edge leaves no representable key.
    let edge = RangeSpec {
        lo: Bound::Excluded(i64::MAX),
        hi: Bound::Unbounded,
    };
    assert_eq!(map.count(edge), 0, "{label}: (MAX, ..)");
    // Sanity: the non-empty ranges still work through the same path.
    assert_eq!(map.count(RangeSpec::all()), 64, "{label}: all");
    assert_eq!(
        map.count(RangeSpec::from_bounds(0..10)),
        10,
        "{label}: 0..10"
    );
    assert_eq!(map.count(RangeSpec::at_least(60)), 4, "{label}: 60..");
}

#[test]
fn range_read_trait_contract_holds_everywhere() {
    let entries = || (0..64i64).map(|k| (k, ()));
    assert_range_read_contract(&WaitFreeTree::<i64>::from_entries(entries()), "wait-free");
    assert_range_read_contract(&WaitFreeTrie::<i64>::from_entries(entries()), "trie");
    assert_range_read_contract(
        &wait_free_range_trees::persistent::PersistentRangeTree::<i64>::from_entries(entries()),
        "persistent",
    );
    assert_range_read_contract(
        &wait_free_range_trees::lockbased::LockedRangeTree::<i64>::from_entries(entries()),
        "locked",
    );
    assert_range_read_contract(
        &wait_free_range_trees::lockfree::LockFreeBst::<i64>::from_entries(entries()),
        "lock-free-linear",
    );
    // The sharded store: inverted ranges must also short-circuit *before*
    // shard routing, including ranges whose endpoints live in different
    // shards in the "wrong" order.
    assert_range_read_contract(&ShardedStore::<i64>::from_entries(entries(), 4), "sharded");
}

#[test]
fn inverted_cross_shard_ranges_never_touch_shard_queries() {
    let store = ShardedStore::<i64>::from_entries((0..1000).map(|k| (k, ())), 8);
    // Endpoints in the last and first shard, inverted.
    assert_eq!(store.count(999, 0), 0);
    assert_eq!(store.range_agg(999, 0), 0);
    assert!(store.collect_range(999, 0).is_empty());
    // Same through the trait with exclusive bounds.
    let spec = RangeSpec::from_bounds((Bound::Excluded(500i64), Bound::Excluded(501)));
    assert_eq!(RangeRead::count(&store, spec), 0, "(500, 501) holds no key");
}
