//! Cross-shard snapshot reads against their oracles.
//!
//! PR 4 gave `ShardedStore` a **global timestamp front**: cross-shard
//! `count` / `range_agg` / `collect_range` acquire one settled per-shard
//! watermark cut and read every touched shard at it, and `SnapshotRead`
//! exposes consistent multi-range reads on top. These tests pin the front
//! to three oracles, under both per-shard `ReadPath` settings:
//!
//! * a `BTreeMap` replaying the same operation sequence (sequential
//!   proptest over token acquisition/expiry and `*_at` reads);
//! * under real concurrency, **striped writers**: each writer owns a key
//!   residue class that spans *every* shard and inserts its keys in
//!   ascending order, so any single-front snapshot must see a gap-free
//!   prefix of each writer's sequence — a torn (per-shard stitched) read
//!   shows up as a hole;
//! * internal agreement: each snapshot's `count` equals its
//!   `collect_range` length, and per-reader counts are monotone in an
//!   insert-only workload.
//!
//! (The adversarial interleavings are machine-checked separately by the
//! `SnapshotCounts` mix in `tests/linearizability.rs`.)

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::prelude::*;
use wait_free_range_trees::store::GlobalFront;

fn store_config(read_path: ReadPath) -> StoreConfig {
    StoreConfig {
        tree: TreeConfig {
            read_path,
            ..TreeConfig::default()
        },
        ..StoreConfig::default()
    }
}

/// One step of the sequential oracle workload.
#[derive(Debug, Clone)]
enum Step {
    Insert(i64, i64),
    Replace(i64, i64),
    Remove(i64),
    Count(i64, i64),
    Collect(i64, i64),
    /// Acquire a front, read `count` and `collect` of the range against it,
    /// and check both against the oracle (the store is quiescent between
    /// steps, so the freshly acquired front never expires here; expiry is
    /// exercised by `front_expiry_is_exact` and the concurrent tests).
    Snapshot(i64, i64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let key = -60i64..60;
    prop_oneof![
        (key.clone(), any::<i64>()).prop_map(|(k, v)| Step::Insert(k, v)),
        (key.clone(), any::<i64>()).prop_map(|(k, v)| Step::Replace(k, v)),
        key.clone().prop_map(Step::Remove),
        (key.clone(), key.clone()).prop_map(|(a, b)| Step::Count(a, b)),
        (key.clone(), key.clone()).prop_map(|(a, b)| Step::Collect(a, b)),
        (key.clone(), key).prop_map(|(a, b)| Step::Snapshot(a, b)),
    ]
}

fn oracle_count(oracle: &BTreeMap<i64, i64>, a: i64, b: i64) -> u64 {
    if a > b {
        0
    } else {
        oracle.range(a..=b).count() as u64
    }
}

fn oracle_entries(oracle: &BTreeMap<i64, i64>, a: i64, b: i64) -> Vec<(i64, i64)> {
    if a > b {
        Vec::new()
    } else {
        oracle.range(a..=b).map(|(k, v)| (*k, *v)).collect()
    }
}

proptest! {
    /// Front-based cross-shard reads and `*_at_front` reads agree with a
    /// `BTreeMap` replay over random operation sequences, on both per-shard
    /// read paths. Boundaries at -20/0/20 put the proptest key domain
    /// `[-60, 60)` across four shards.
    #[test]
    fn snapshot_reads_agree_with_btreemap(
        steps in proptest::collection::vec(step_strategy(), 1..100),
        descriptor_reads in any::<bool>(),
    ) {
        let read_path = if descriptor_reads { ReadPath::Descriptor } else { ReadPath::Fast };
        let store: ShardedStore<i64, i64> =
            ShardedStore::with_boundaries_and_config(vec![-20, 0, 20], store_config(read_path));
        let mut oracle = BTreeMap::new();
        for step in &steps {
            match *step {
                Step::Insert(k, v) => {
                    let expect = !oracle.contains_key(&k);
                    if expect {
                        oracle.insert(k, v);
                    }
                    prop_assert_eq!(store.insert(k, v), expect);
                }
                Step::Replace(k, v) => {
                    let expect = oracle.insert(k, v);
                    prop_assert_eq!(store.insert_or_replace(k, v), expect);
                }
                Step::Remove(k) => {
                    let expect = oracle.remove(&k);
                    prop_assert_eq!(store.remove_entry(&k), expect);
                }
                Step::Count(a, b) => {
                    prop_assert_eq!(store.count(a, b), oracle_count(&oracle, a, b));
                    prop_assert_eq!(store.stitched_count(a, b), oracle_count(&oracle, a, b));
                }
                Step::Collect(a, b) => {
                    prop_assert_eq!(store.collect_range(a, b), oracle_entries(&oracle, a, b));
                }
                Step::Snapshot(a, b) => {
                    let front: GlobalFront = store.acquire_front();
                    prop_assert!(store.front_valid(&front));
                    prop_assert_eq!(
                        store.range_agg_at_front(&front, a, b),
                        Some(oracle_count(&oracle, a, b))
                    );
                    prop_assert_eq!(
                        store.collect_range_at_front(&front, a, b),
                        Some(oracle_entries(&oracle, a, b))
                    );
                    // The trait surface sees the same state.
                    let (count, entries) = store
                        .snapshot_count_and_collect(RangeSpec::inclusive(a, b));
                    prop_assert_eq!(count, oracle_count(&oracle, a, b));
                    prop_assert_eq!(entries, oracle_entries(&oracle, a, b));
                }
            }
        }
        store.check_invariants();
    }
}

/// A front expires exactly when a touched shard linearizes an update, and a
/// fresh front sees the new state.
#[test]
fn front_expiry_is_exact() {
    let store: ShardedStore<i64> = ShardedStore::from_entries((0..400).map(|k| (k, ())), 4);
    let front = store.acquire_front();
    assert_eq!(store.range_agg_at_front(&front, 0, 399), Some(400));

    // A *failed* insert still occupies a timestamp on its shard: the cut is
    // conservative and expires.
    assert!(!store.insert(5, ()));
    assert_eq!(store.range_agg_at_front(&front, 0, 399), None);

    let fresh = store.acquire_front();
    store.remove(&5);
    store.remove(&300);
    let newest = store.acquire_front();
    assert_eq!(store.range_agg_at_front(&newest, 0, 399), Some(398));
    assert_eq!(store.range_agg_at_front(&fresh, 0, 399), None);
}

/// Striped concurrent writers + snapshot readers: every writer inserts its
/// residue class `{w, w + W, w + 2W, …}` — which spans every shard — in
/// ascending order, so each snapshot must observe, per writer, a gap-free
/// prefix; `count` and `collect_range` of one snapshot must agree; and
/// per-reader total counts must be monotone. Run under both per-shard read
/// paths.
#[test]
fn concurrent_snapshots_see_gap_free_writer_prefixes() {
    const WRITERS: i64 = 3;
    const PER_WRITER: i64 = 400;
    const KEYS: i64 = WRITERS * PER_WRITER;
    for read_path in [ReadPath::Fast, ReadPath::Descriptor] {
        // Boundaries chosen so every residue class crosses all shards.
        let store: Arc<ShardedStore<i64>> = Arc::new(ShardedStore::with_boundaries_and_config(
            vec![KEYS / 4, KEYS / 2, 3 * KEYS / 4],
            store_config(read_path),
        ));
        let done = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        assert!(store.insert(w + i * WRITERS, ()));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let store = Arc::clone(&store);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut rng = StdRng::seed_from_u64(0x5A47 + r as u64);
                    while !done.load(Ordering::Relaxed) {
                        // One snapshot: the full listing plus the total count.
                        let (count, entries) =
                            store.snapshot_count_and_collect(RangeSpec::inclusive(0, KEYS - 1));
                        assert_eq!(
                            count,
                            entries.len() as u64,
                            "count and collect of one snapshot disagree"
                        );
                        assert!(
                            count >= last,
                            "snapshot count went backwards ({last} -> {count}) while insert-only"
                        );
                        last = count;
                        // Per-writer prefixes must be gap-free: a hole means
                        // the read tore across shards.
                        let mut next_expected = [0i64; WRITERS as usize];
                        for (key, ()) in &entries {
                            let w = (key % WRITERS) as usize;
                            let index = key / WRITERS;
                            assert_eq!(
                                index, next_expected[w],
                                "writer {w}'s prefix has a hole before key {key}"
                            );
                            next_expected[w] += 1;
                        }
                        // Also exercise narrower cross-shard snapshots.
                        let lo = rng.gen_range(0..KEYS / 2);
                        let counts = store.snapshot_counts(&[
                            RangeSpec::inclusive(0, KEYS - 1),
                            RangeSpec::inclusive(0, lo),
                            RangeSpec::inclusive(lo + 1, KEYS - 1),
                        ]);
                        assert_eq!(
                            counts[0],
                            counts[1] + counts[2],
                            "subrange counts of one snapshot must sum to the total"
                        );
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.len(), KEYS as u64);
        assert_eq!(store.count(0, KEYS - 1), KEYS as u64);
        let stats = store.store_stats();
        assert!(
            stats.snapshot_acquires > 0,
            "snapshot reads must have acquired fronts"
        );
        store.check_invariants();
    }
}

/// The single-front blanket impl on a single tree: token reads are mutually
/// consistent and expire on any update, for tree and trie alike.
#[test]
fn single_tree_snapshot_tokens_expire_on_update() {
    let tree: WaitFreeTree<i64> = WaitFreeTree::from_entries((0..64).map(|k| (k, ())));
    let token = tree.acquire_snapshot();
    assert_eq!(tree.count_at(&token, RangeSpec::all()), Some(64));
    assert_eq!(
        tree.collect_range_at(&token, RangeSpec::from_bounds(0..8))
            .map(|v| v.len()),
        Some(8)
    );
    tree.insert(1000, ());
    assert!(!tree.snapshot_valid(&token));
    assert_eq!(tree.count_at(&token, RangeSpec::all()), None);

    let trie: WaitFreeTrie<u64> = WaitFreeTrie::from_entries((0..64u64).map(|k| (k, ())));
    let token = trie.acquire_snapshot();
    assert_eq!(trie.range_agg_at(&token, RangeSpec::all()), Some(64));
    trie.remove(&5);
    assert_eq!(trie.range_agg_at(&token, RangeSpec::all()), None);
}

/// Every backend in the workspace answers the snapshot drivers coherently
/// (the blanket impl for the single trees and baselines, the global front
/// for the store): halves sum to the total even while quiescent state is
/// all we can assert uniformly.
#[test]
fn all_backends_answer_snapshot_drivers() {
    use wait_free_range_trees::workload::TreeImpl;
    let prefill: Vec<i64> = (0..100).collect();
    for imp in TreeImpl::ALL {
        let set = imp.build(&prefill, 4);
        let (a, b) = set.snapshot_count_pair(0, 49, 50, 99);
        assert_eq!(a + b, 100, "{}: halves must sum to the total", imp.name());
    }
}
