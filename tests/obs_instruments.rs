//! Integration tests for the `wft-obs` instruments themselves.
//!
//! The observability layer is only trustworthy if its arithmetic is exact
//! where it claims exactness and bounded where it claims bounds, so:
//!
//! * a proptest checks [`HistogramSnapshot::quantile`] against a
//!   sorted-vector oracle — exact below the linear/log boundary, and an
//!   overestimate by at most one bucket width (≤ 25 %) above it;
//! * counters are monotonic under concurrent increments and their
//!   snapshot/delta arithmetic is exact (the bench binaries' per-window
//!   metrics depend on this);
//! * a multi-threaded recorder run shows the sharded cells lose nothing:
//!   concurrent `inc`/`record` sums come out exactly, not approximately;
//! * the [`TraceRing`] keeps exactly the most recent `capacity` events
//!   across wrap-around, with contiguous sequence numbers and an exact
//!   dropped-event count.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use proptest::prelude::*;

use wait_free_range_trees::obs::hist::LINEAR_MAX;
use wait_free_range_trees::obs::trace::{TraceKind, TraceRing};
use wait_free_range_trees::obs::{Counter, Gauge, MetricsSnapshot, Registry};
use wait_free_range_trees::prelude::LatencyHistogram;

/// The oracle the histogram approximates: the rank-`ceil(p * n)` element of
/// the sorted recordings (matching `HistogramSnapshot::quantile`'s rank
/// definition).
fn oracle_quantile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// `quantile(p)` is sandwiched by the oracle: never below it (the
    /// bucket's upper bound is returned), and above it by at most the
    /// width of the bucket holding it — `le <= oracle + oracle/4`, exact
    /// equality below `LINEAR_MAX`.
    #[test]
    fn quantile_tracks_sorted_oracle(
        values in proptest::collection::vec(0u64..20_000_000, 1..400),
        permilles in proptest::collection::vec(0u32..=1000, 1..8),
    ) {
        let hist = LatencyHistogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum_ns, values.iter().sum::<u64>());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &permille in &permilles {
            let p = permille as f64 / 1000.0;
            let oracle = oracle_quantile(&sorted, p);
            let got = snap.quantile(p);
            prop_assert!(got >= oracle, "p={} got={} oracle={}", p, got, oracle);
            if oracle < LINEAR_MAX {
                prop_assert_eq!(got, oracle, "unit buckets are exact");
            } else {
                prop_assert!(
                    got <= oracle + oracle / 4,
                    "p={} got={} oracle={} (bucket width must stay under 25%)",
                    p, got, oracle
                );
            }
        }
    }

    /// Merging two histograms is the same as recording everything into one,
    /// and a delta against a prefix snapshot recovers exactly the suffix.
    #[test]
    fn histogram_merge_and_delta_are_bucket_exact(
        first in proptest::collection::vec(0u64..1_000_000, 0..200),
        second in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let a = LatencyHistogram::new();
        for &v in &first {
            a.record(v);
        }
        let prefix = a.snapshot();
        for &v in &second {
            a.record(v);
        }
        let full = a.snapshot();

        let b = LatencyHistogram::new();
        for &v in &second {
            b.record(v);
        }
        prop_assert_eq!(&prefix.merged_with(&b.snapshot()), &full);
        prop_assert_eq!(&full.delta_since(&prefix), &b.snapshot());
    }
}

#[test]
fn counter_is_monotonic_and_deltas_are_exact() {
    let c = Counter::new();
    let mut last = 0;
    for i in 0..1_000u64 {
        if i % 3 == 0 {
            c.add(i);
        } else {
            c.inc();
        }
        let now = c.value();
        assert!(now >= last, "counter went backwards: {last} -> {now}");
        last = now;
    }

    let mut before = MetricsSnapshot::new();
    before.push_counter("x", 5);
    before.push_gauge("depth", 7);
    let mut after = MetricsSnapshot::new();
    after.push_counter("x", 9);
    after.push_counter("y", 3);
    after.push_gauge("depth", 4);
    let delta = after.delta_since(&before);
    assert_eq!(delta.counter("x"), Some(4));
    assert_eq!(delta.counter("y"), Some(3), "new metrics count from zero");
    assert_eq!(delta.gauge("depth"), Some(-3), "gauges subtract signed");

    // Counter deltas saturate rather than wrap if a process restart ever
    // hands delta_since a fresher "earlier".
    assert_eq!(before.delta_since(&after).counter("x"), Some(0));
}

#[test]
fn concurrent_recorders_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;

    let counter = Arc::new(Counter::new());
    let gauge = Arc::new(Gauge::new());
    let hist = Arc::new(LatencyHistogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = Arc::clone(&counter);
            let gauge = Arc::clone(&gauge);
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    if i % 2 == 0 {
                        gauge.inc();
                    } else {
                        gauge.dec();
                    }
                    // Distinct values per thread so bucket spread is real.
                    hist.record(t as u64 * 1_000 + (i % 97));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.value(), total, "no increment may be lost");
    assert_eq!(gauge.value(), 0, "balanced inc/dec must cancel exactly");
    let snap = hist.snapshot();
    assert_eq!(snap.count, total);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..PER_THREAD).map(|i| t * 1_000 + (i % 97)).sum::<u64>())
        .sum();
    assert_eq!(snap.sum_ns, expected_sum);

    // The same exactness holds through registry handles (get-or-create
    // returns the same cell for the same name).
    let registry = Registry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = registry.counter("shared");
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    registry.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(registry.snapshot().counter("shared"), Some(total));
}

#[test]
fn trace_ring_wraps_to_most_recent_events() {
    let ring = TraceRing::new(8);
    assert_eq!(ring.capacity(), 8);
    assert!(ring.drain().is_empty(), "fresh ring has no events");

    let kinds = [
        TraceKind::SnapshotRetry,
        TraceKind::ScanResume,
        TraceKind::RangeFallback,
        TraceKind::LenFallback,
        TraceKind::HelpRebuild,
        TraceKind::WalStall,
        TraceKind::CheckpointBegin,
        TraceKind::CheckpointEnd,
        TraceKind::IoRetry,
        TraceKind::DegradedEnter,
        TraceKind::DegradedResume,
    ];
    const EMITTED: u64 = 21;
    for i in 0..EMITTED {
        ring.emit(kinds[i as usize % kinds.len()], i as u16);
    }

    assert_eq!(ring.total(), EMITTED);
    assert_eq!(ring.dropped(), EMITTED - 8);
    let events = ring.drain();
    assert_eq!(events.len(), 8, "exactly the last `capacity` survive");
    for (offset, event) in events.iter().enumerate() {
        let seq = EMITTED - 8 + offset as u64;
        assert_eq!(event.seq, seq, "sequence numbers are contiguous");
        assert_eq!(event.arg, seq as u16, "payload survives the packing");
        assert_eq!(event.kind, kinds[seq as usize % kinds.len()]);
    }
    assert!(
        events.windows(2).all(|w| w[0].micros <= w[1].micros),
        "timestamps are non-decreasing for a single emitter"
    );

    let timeline = ring.render_timeline();
    assert!(timeline.starts_with("... 13 earlier events overwritten ..."));
    assert_eq!(
        timeline.lines().count(),
        9,
        "notice plus one line per event"
    );
}

#[test]
fn trace_ring_survives_concurrent_emitters() {
    let ring = Arc::new(TraceRing::new(64));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for i in 0..10_000u16 {
                    ring.emit(TraceKind::SnapshotRetry, i);
                    if i % 1_024 == 0 {
                        thread::sleep(Duration::from_micros(t));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(ring.total(), 40_000, "every claim lands, even when racing");
    let events = ring.drain();
    assert_eq!(events.len(), 64);
    assert!(
        events.windows(2).all(|w| w[1].seq == w[0].seq + 1),
        "a quiescent drain sees a contiguous suffix"
    );
}
