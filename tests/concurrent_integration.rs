//! Concurrent cross-crate integration tests.
//!
//! The unit/stress tests of `wft-core` validate the wait-free tree in
//! isolation; here the whole stack is exercised the way the benchmark
//! harness uses it, and the wait-free tree is cross-validated against the
//! trivially correct lock-based baseline under identical concurrent
//! workloads (with per-thread key partitions so the final state is
//! deterministic).

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::core::WaitFreeTree;
use wait_free_range_trees::lockbased::LockedRangeTree;
use wait_free_range_trees::workload::{run_once, TreeImpl, WorkloadSpec};

const THREADS: usize = 4;

#[test]
fn wait_free_and_locked_trees_converge_to_the_same_state() {
    const SPAN: i64 = 1_000;
    const OPS: usize = 4_000;
    let wait_free: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::new());
    let locked: Arc<LockedRangeTree<i64>> = Arc::new(LockedRangeTree::new());

    let handles: Vec<_> = (0..THREADS as i64)
        .map(|t| {
            let wait_free = Arc::clone(&wait_free);
            let locked = Arc::clone(&locked);
            thread::spawn(move || {
                // Each thread owns a disjoint key stripe, so both structures
                // apply exactly the same per-key update sequence even though
                // global interleavings differ.
                let lo = t * SPAN;
                let mut rng = StdRng::seed_from_u64(0xBEEF + t as u64);
                for _ in 0..OPS {
                    let k = lo + rng.gen_range(0..SPAN);
                    if rng.gen_bool(0.6) {
                        let a = wait_free.insert(k, ());
                        let b = locked.insert(k, ());
                        assert_eq!(a, b, "insert({k}) disagreed");
                    } else {
                        let a = wait_free.remove(&k);
                        let b = locked.remove(&k);
                        assert_eq!(a, b, "remove({k}) disagreed");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(wait_free.len(), locked.len());
    assert_eq!(
        wait_free.entries_quiescent(),
        locked.entries(),
        "final contents diverged"
    );
    for (lo, hi) in [(0, THREADS as i64 * SPAN), (100, 900), (1_500, 2_500)] {
        assert_eq!(wait_free.count(lo, hi), locked.count(lo, hi));
    }
    wait_free.check_invariants();
    locked.check_invariants();
}

#[test]
fn harness_runs_every_paper_workload_on_every_implementation() {
    // A smoke version of the full evaluation: every (workload, tree) pair
    // must run, make progress, and leave the structure consistent.
    for spec in [
        WorkloadSpec::contains_benchmark().scaled_down(5_000),
        WorkloadSpec::insert_delete().scaled_down(5_000),
        WorkloadSpec::successful_insert().scaled_down(5_000),
        WorkloadSpec::range_mix(10.0, 0.01).scaled_down(5_000),
    ] {
        for imp in TreeImpl::ALL {
            let result = run_once(imp, &spec, 2, Duration::from_millis(40), 99);
            assert!(
                result.total_ops > 0,
                "{} produced no operations on {}",
                imp.name(),
                spec.name
            );
        }
    }
}

#[test]
fn concurrent_range_sums_match_between_wait_free_and_persistent() {
    use wait_free_range_trees::core::Sum;
    use wait_free_range_trees::persistent::PersistentRangeTree;

    // Both key-value trees ingest the same per-thread streams (disjoint key
    // stripes); their range sums must agree afterwards.
    const SPAN: i64 = 2_000;
    let wait_free: Arc<WaitFreeTree<i64, i64, Sum>> = Arc::new(WaitFreeTree::new());
    let persistent: Arc<PersistentRangeTree<i64, i64, Sum>> = Arc::new(PersistentRangeTree::new());
    let handles: Vec<_> = (0..THREADS as i64)
        .map(|t| {
            let wait_free = Arc::clone(&wait_free);
            let persistent = Arc::clone(&persistent);
            thread::spawn(move || {
                let lo = t * SPAN;
                let mut rng = StdRng::seed_from_u64(77 + t as u64);
                for i in 0..SPAN {
                    let value = rng.gen_range(-100..100);
                    wait_free.insert(lo + i, value);
                    persistent.insert(lo + i, value);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for (lo, hi) in [
        (0, THREADS as i64 * SPAN - 1),
        (500, 1_499),
        (3_000, 3_999),
        (7_000, 9_000),
    ] {
        assert_eq!(
            wait_free.range_agg(lo, hi),
            persistent.range_agg(lo, hi),
            "range_sum over [{lo}, {hi}] diverged"
        );
    }
    wait_free.check_invariants();
    persistent.check_invariants();
}
