//! Property test: cross-shard batches are all-or-nothing.
//!
//! The sharded store's publish-at-front commit claims that a batch
//! touching several shards becomes visible **atomically**: any reader
//! whose cut validates sees either every one of the batch's effects or
//! none of them. This suite attacks the claim directly: striped writers
//! keep rewriting a fixed *stripe* of keys — one key per shard, always the
//! same value across the whole stripe within one batch — while concurrent
//! readers snapshot the stripe through every cut-validated read path:
//!
//! * `collect_range` (the native cross-shard cut read),
//! * `collect_range_at` under an acquired [`SnapshotToken`] sandwich,
//! * a [`ScanCursor`] drained to completion, whenever the drain reports
//!   [`ScanConsistency::Snapshot`].
//!
//! A half-applied batch would surface as a stripe whose keys carry two
//! different values inside one validated read. Before the commit gate,
//! that interleaving was reachable (and documented); now any occurrence
//! is a test failure. Each proptest case is a fresh store with its own
//! shard count, writer count, and schedule seed — 256 cases, zero
//! tolerated violations.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use proptest::prelude::*;

use wait_free_range_trees::api::{RangeScan, RangeSpec, ScanConsistency, ScanCursor, SnapshotRead};
use wait_free_range_trees::{ShardedStore, StoreOp};

/// Key universe the stripe spreads over. Large enough that the store's
/// range partition puts consecutive stripe keys on different shards.
const UNIVERSE: i64 = 1 << 20;

/// Builds a stripe of `width` keys spread uniformly across the universe
/// and verifies (via the store's own router) that it spans every shard.
fn stripe_keys(width: usize) -> Vec<i64> {
    (0..width as i64)
        .map(|i| i * (UNIVERSE / width as i64) + 17)
        .collect()
}

/// One whole-stripe rewrite: every key set to `value` in a single batch.
fn stripe_batch(stripe: &[i64], value: i64) -> Vec<StoreOp<i64, i64>> {
    stripe
        .iter()
        .map(|&key| StoreOp::InsertOrReplace { key, value })
        .collect()
}

/// Returns the number of atomicity violations a slice of observed stripe
/// entries contains: 0 when every key carries the same value (and none is
/// missing), 1 otherwise.
fn torn(entries: &[(i64, i64)], stripe_len: usize) -> u64 {
    if entries.len() != stripe_len {
        return 1;
    }
    let first = entries[0].1;
    u64::from(entries.iter().any(|&(_, v)| v != first))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Striped writers vs snapshot readers: every cut-validated read of
    /// the stripe is all-or-nothing, across shard counts, writer counts,
    /// and schedules.
    #[test]
    fn cross_shard_batches_are_all_or_nothing(
        shards in 2usize..=6,
        writers in 1usize..=3,
        rounds in 8u64..40,
    ) {
        // Two stripe keys per shard: the equi-depth split of the prefill
        // then puts a shard boundary inside the stripe, so every batch is
        // genuinely cross-shard.
        let stripe = stripe_keys(shards * 2);
        let store: ShardedStore<i64, i64> =
            ShardedStore::from_entries(stripe.iter().map(|&k| (k, 0)), shards);
        // The stripe must genuinely cross shards for the test to bite.
        let touched: std::collections::HashSet<usize> =
            stripe.iter().map(|k| store.shard_of(k)).collect();
        prop_assert!(touched.len() >= 2, "stripe spans one shard; widen it");

        let done = AtomicBool::new(false);
        let violations = AtomicU64::new(0);
        let snapshot_reads = AtomicU64::new(0);
        let span = RangeSpec::inclusive(0, UNIVERSE);

        std::thread::scope(|scope| {
            let writer_handles: Vec<_> = (0..writers)
                .map(|w| {
                    let store = &store;
                    let stripe = &stripe;
                    scope.spawn(move || {
                        for round in 0..rounds {
                            // Tag values by writer and round so any torn
                            // read is attributable; the whole stripe is
                            // one value per batch.
                            let value = ((w as i64) << 32) | (round as i64 + 1);
                            store
                                .apply_batch(stripe_batch(stripe, value))
                                .expect("a stripe batch validates");
                        }
                    })
                })
                .collect();

            // One reader hammers all three cut-validated paths until the
            // writers finish, then once more for a quiescent final look.
            let reader_handle = scope.spawn(|| {
                let mut last_pass = false;
                loop {
                    // Native cross-shard cut read.
                    let entries = store.collect_range(0, UNIVERSE);
                    violations.fetch_add(torn(&entries, stripe.len()), Ordering::Relaxed);

                    // Scalar-sandwich snapshot read; entry/exit validation
                    // may reject under churn — only validated reads count.
                    let token = store.acquire_snapshot();
                    if let Some(entries) = store.collect_range_at(&token, span) {
                        violations.fetch_add(torn(&entries, stripe.len()), Ordering::Relaxed);
                        snapshot_reads.fetch_add(1, Ordering::Relaxed);
                    }

                    // Streaming drain: a `Snapshot` drain promises exactly
                    // one instant; a `Resumed` one does not claim
                    // atomicity and is skipped.
                    let mut cursor = store.scan(span);
                    let entries = cursor.drain(3);
                    if cursor.consistency() == ScanConsistency::Snapshot {
                        violations.fetch_add(torn(&entries, stripe.len()), Ordering::Relaxed);
                        snapshot_reads.fetch_add(1, Ordering::Relaxed);
                    }

                    if last_pass {
                        break;
                    }
                    last_pass = done.load(Ordering::Acquire);
                }
            });

            for handle in writer_handles {
                handle.join().expect("writer thread");
            }
            done.store(true, Ordering::Release);
            reader_handle.join().expect("reader thread");
        });

        prop_assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "a cut-validated read observed a half-applied stripe batch"
        );
        // The final quiescent pass always validates, so at least one
        // snapshot-consistent read really ran.
        prop_assert!(snapshot_reads.load(Ordering::Relaxed) > 0);
        store.check_invariants();
    }
}

/// The deterministic single-thread complement: interleave stripe batches
/// with reads and assert the stripe is uniform after every commit, through
/// repeated `ScanCursor` drains.
#[test]
fn stripe_is_uniform_through_repeated_scan_drains() {
    let stripe = stripe_keys(6);
    let store: ShardedStore<i64, i64> =
        ShardedStore::from_entries(stripe.iter().map(|&k| (k, 0)), 4);
    for round in 1..=64i64 {
        store
            .apply_batch(stripe_batch(&stripe, round))
            .expect("stripe batch validates");
        for chunk in [1usize, 2, 5] {
            let mut cursor = store.scan(RangeSpec::inclusive(0, UNIVERSE));
            let entries = cursor.drain(chunk);
            assert_eq!(cursor.consistency(), ScanConsistency::Snapshot);
            assert_eq!(entries.len(), stripe.len());
            assert!(
                entries.iter().all(|&(_, v)| v == round),
                "round {round}: drain (chunk {chunk}) saw a torn stripe: {entries:?}"
            );
        }
    }
    assert!(store.store_stats().batch_commits >= 64);
}
