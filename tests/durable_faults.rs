//! Chaos: the durable store under randomized fault schedules, checked
//! against an acknowledged-prefix oracle.
//!
//! The contract being enforced (see `wft-durable`'s crate docs):
//!
//! * **No acknowledged batch is ever lost.** Transient storage errors are
//!   retried behind the caller's back; a persistent failure degrades the
//!   store instead of corrupting it, and after storage heals, a reopen
//!   recovers exactly the fold of the acknowledged batches — plus at most
//!   the single in-flight batch that triggered the escalation (its frame
//!   may have reached the disk intact even though the caller got an
//!   error; recovery replaying it is allowed, inventing anything else is
//!   not).
//! * **Degraded mode is read-only, not dead.** While degraded, reads keep
//!   serving the acknowledged prefix from memory and writes fail fast
//!   with `DurableError::Degraded`; `try_resume` restores write service
//!   once the fault clears.
//! * **Recovery is idempotent**: reopening twice yields the same state.
//!
//! The proptest drives a command script — batches, checkpoints, scheduled
//! transient faults, short writes, outages, heals, resumes — against a
//! `FaultyStorage` over the real filesystem, then heals, reopens twice on
//! clean storage, and compares against the oracle. A separate concurrent
//! test hammers the store from writer and scanner threads across two
//! outage/resume cycles.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use wait_free_range_trees::durable::{
    DurableConfig, DurableError, DurableStore, Fault, FaultKind, FaultyStorage, RetryPolicy,
    ScratchDir,
};
use wait_free_range_trees::prelude::*;

/// One op inside a generated batch (same shape as the recovery suite).
#[derive(Debug, Clone)]
enum GenOp {
    Insert(i64, i64),
    Upsert(i64, i64),
    Remove(i64),
}

impl GenOp {
    fn key(&self) -> i64 {
        match *self {
            GenOp::Insert(k, _) | GenOp::Upsert(k, _) | GenOp::Remove(k) => k,
        }
    }

    fn to_store_op(&self) -> StoreOp<i64, i64> {
        match *self {
            GenOp::Insert(key, value) => StoreOp::Insert { key, value },
            GenOp::Upsert(key, value) => StoreOp::InsertOrReplace { key, value },
            GenOp::Remove(key) => StoreOp::RemoveEntry { key },
        }
    }

    fn apply_to_oracle(&self, oracle: &mut BTreeMap<i64, i64>) {
        match *self {
            GenOp::Insert(k, v) => {
                oracle.entry(k).or_insert(v);
            }
            GenOp::Upsert(k, v) => {
                oracle.insert(k, v);
            }
            GenOp::Remove(k) => {
                oracle.remove(&k);
            }
        }
    }
}

/// One step of a chaos script.
#[derive(Debug, Clone)]
enum Cmd {
    /// Submit a batch; acknowledged ⇒ folded into the oracle.
    Batch(Vec<GenOp>),
    /// Attempt a checkpoint; failures must never lose data.
    Checkpoint,
    /// Schedule a one-shot transient error `delta` faultable ops from now.
    Transient { delta: u64, kind: usize },
    /// Schedule a torn write `delta` faultable ops from now.
    ShortWrite { delta: u64 },
    /// Schedule the disk dying `delta` faultable ops from now.
    Outage { delta: u64, kind: usize },
    /// Disk comes back; unfired scheduled misfortune clears with it.
    Heal,
    /// Ask the store to leave degraded mode.
    Resume,
}

/// Transient error kinds — all retryable under the classification rules.
const TRANSIENT_KINDS: [io::ErrorKind; 3] = [
    io::ErrorKind::Interrupted,
    io::ErrorKind::TimedOut,
    io::ErrorKind::Other,
];

/// Persistent-outage kinds (still not fail-fast; persistence comes from
/// the outage never clearing, not from the errno).
const OUTAGE_KINDS: [io::ErrorKind; 2] = [io::ErrorKind::Other, io::ErrorKind::StorageFull];

fn op_strategy() -> impl Strategy<Value = GenOp> {
    let key = -40i64..40;
    prop_oneof![
        (key.clone(), -1000i64..1000).prop_map(|(k, v)| GenOp::Insert(k, v)),
        (key.clone(), -1000i64..1000).prop_map(|(k, v)| GenOp::Upsert(k, v)),
        key.prop_map(GenOp::Remove),
    ]
}

fn dedup_batch(ops: Vec<GenOp>) -> Vec<GenOp> {
    let mut seen = std::collections::HashSet::new();
    ops.into_iter().filter(|op| seen.insert(op.key())).collect()
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        5 => proptest::collection::vec(op_strategy(), 1..6)
            .prop_map(|ops| Cmd::Batch(dedup_batch(ops))),
        1 => Just(Cmd::Checkpoint),
        2 => (0u64..10, 0usize..TRANSIENT_KINDS.len())
            .prop_map(|(delta, kind)| Cmd::Transient { delta, kind }),
        1 => (0u64..10).prop_map(|delta| Cmd::ShortWrite { delta }),
        1 => (0u64..10, 0usize..OUTAGE_KINDS.len())
            .prop_map(|(delta, kind)| Cmd::Outage { delta, kind }),
        1 => Just(Cmd::Heal),
        1 => Just(Cmd::Resume),
    ]
}

/// Fast-failing config so escalation happens within the test's patience;
/// tiny segments so fault schedules also land on rotations.
fn chaos_config() -> DurableConfig {
    DurableConfig {
        shards: 3,
        segment_bytes: 512,
        retry: RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
        },
        ..DurableConfig::default()
    }
}

fn entries(oracle: &BTreeMap<i64, i64>) -> Vec<(i64, i64)> {
    oracle.iter().map(|(k, v)| (*k, *v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Run a random chaos script; at every step the in-memory state must
    /// equal the acknowledged-prefix oracle, and after healing the final
    /// on-disk state must recover to the oracle (possibly plus the one
    /// escalating batch), identically across two reopens.
    #[test]
    fn no_acknowledged_batch_is_ever_lost(
        script in proptest::collection::vec(cmd_strategy(), 4..28),
    ) {
        let scratch = ScratchDir::new("chaos-prop");
        let faulty = FaultyStorage::over_fs();
        let store: DurableStore<i64, i64> = DurableStore::open_with_storage(
            scratch.path(),
            chaos_config(),
            Arc::new(faulty.clone()),
        )
        .unwrap();

        // The oracle of acknowledged batches, and (if a batch's failure
        // escalated the journal) the one batch whose frame may have
        // reached the disk anyway.
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        let mut tail: Option<Vec<GenOp>> = None;

        for cmd in &script {
            match cmd {
                Cmd::Batch(ops) => {
                    let was_degraded = store.is_degraded();
                    match store.apply_durable(ops.iter().map(GenOp::to_store_op).collect()) {
                        Ok(_) => {
                            for op in ops {
                                op.apply_to_oracle(&mut oracle);
                            }
                        }
                        Err(DurableError::Degraded(_)) => {
                            prop_assert!(store.is_degraded());
                            if !was_degraded {
                                // This submission drove the escalation:
                                // its last flush attempt may have landed
                                // an intact frame before the error.
                                tail = Some(ops.clone());
                            }
                        }
                        Err(other) => prop_assert!(
                            false,
                            "unexpected write error under Degrade escalation: {other:?}"
                        ),
                    }
                }
                Cmd::Checkpoint => {
                    // May fail — a failed checkpoint never truncates the
                    // WAL, so the oracle is unaffected either way.
                    let _ = store.checkpoint();
                }
                Cmd::Transient { delta, kind } => faulty.schedule(Fault::nth(
                    faulty.ops() + delta,
                    FaultKind::Error(TRANSIENT_KINDS[*kind]),
                )),
                Cmd::ShortWrite { delta } => faulty.schedule(Fault::nth(
                    faulty.ops() + delta,
                    FaultKind::ShortWrite,
                )),
                Cmd::Outage { delta, kind } => faulty.schedule(Fault::nth(
                    faulty.ops() + delta,
                    FaultKind::Outage(OUTAGE_KINDS[*kind]),
                )),
                Cmd::Heal => faulty.heal(),
                Cmd::Resume => match store.try_resume() {
                    // The probe rolled the torn tail back and opened a
                    // fresh segment: the escalating batch is off the disk.
                    Ok(true) => tail = None,
                    Ok(false) => {}
                    // Still degraded (probe failed) or the state machine
                    // refused; either way the oracle is untouched.
                    Err(_) => {}
                },
            }

            // Invariant after every step: memory serves exactly the
            // acknowledged prefix — degraded or not.
            prop_assert_eq!(
                RangeRead::collect_range(&store, RangeSpec::all()),
                entries(&oracle)
            );
            if store.is_degraded() {
                prop_assert!(matches!(
                    store.apply_durable(vec![StoreOp::InsertOrReplace {
                        key: i64::MAX,
                        value: 0
                    }]),
                    Err(DurableError::Degraded(_))
                ));
            }
        }

        // Storage heals; the store shuts down in whatever state chaos
        // left it (graceful from Running, frozen from Degraded).
        faulty.heal();
        store.shutdown();
        drop(store);

        // The two states recovery is allowed to produce.
        let acked = entries(&oracle);
        let with_tail = {
            let mut o = oracle.clone();
            for op in tail.iter().flatten() {
                op.apply_to_oracle(&mut o);
            }
            entries(&o)
        };

        let mut seen = Vec::new();
        for round in 0..2 {
            let store: DurableStore<i64, i64> =
                DurableStore::open_with_config(scratch.path(), chaos_config()).unwrap();
            let recovered = RangeRead::collect_range(&store, RangeSpec::all());
            prop_assert!(
                recovered == acked || recovered == with_tail,
                "round {}: recovered {:?}\nacked {:?}\nacked+tail {:?}",
                round,
                recovered,
                acked,
                with_tail
            );
            store.store().check_invariants();
            store.shutdown();
            seen.push(recovered);
        }
        prop_assert_eq!(&seen[0], &seen[1], "recovery must be idempotent");
    }
}

/// Concurrent writers and scanners ride through two full
/// outage → degrade → heal → resume cycles. Every acknowledged write must
/// be visible at quiescence, scans must stay well-formed throughout, and
/// the reopened state may only ever be *newer* per key than the last
/// acknowledged value (an escalating in-flight frame is the one allowed
/// source of extra data).
#[test]
fn concurrent_chaos_survives_outage_and_resume_cycles() {
    const WRITERS: usize = 3;
    const STRIPE: i64 = 64;
    const OPS: i64 = 600;

    let scratch = ScratchDir::new("chaos-threads");
    let faulty = FaultyStorage::over_fs();
    let store: Arc<DurableStore<i64, i64>> = Arc::new(
        DurableStore::open_with_storage(scratch.path(), chaos_config(), Arc::new(faulty.clone()))
            .unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let finished = Arc::new(std::sync::atomic::AtomicUsize::new(0));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            let finished = Arc::clone(&finished);
            std::thread::spawn(move || {
                // Disjoint stripes; values increase per key, so "reopened
                // value >= last acked value" is checkable per key.
                let base = w as i64 * 1_000;
                let mut acked: BTreeMap<i64, i64> = BTreeMap::new();
                for i in 0..OPS {
                    let key = base + (i % STRIPE);
                    let submitted =
                        store.apply_durable(vec![StoreOp::InsertOrReplace { key, value: i }]);
                    match submitted {
                        Ok(_) => {
                            acked.insert(key, i);
                        }
                        Err(DurableError::Degraded(_)) => {
                            // Read-only window: back off briefly.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(other) => panic!("unexpected write error: {other:?}"),
                    }
                }
                finished.fetch_add(1, Ordering::Relaxed);
                acked
            })
        })
        .collect();

    let scanner = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut drains = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut cursor = store.scan(RangeSpec::all());
                let rows = cursor.drain(usize::MAX);
                assert!(
                    rows.windows(2).all(|w| w[0].0 < w[1].0),
                    "scan rows must be strictly ordered"
                );
                drains += 1;
            }
            drains
        })
    };

    // Up to two outage cycles while the writers hammer away. If the
    // writers drain their scripts before a cycle trips a write, the cycle
    // is skipped rather than spun on forever.
    let mut cycles = 0u64;
    for _ in 0..2 {
        std::thread::sleep(Duration::from_millis(5));
        if finished.load(Ordering::Relaxed) == WRITERS {
            break;
        }
        faulty.outage_now(io::ErrorKind::Other);
        // Wait until a writer actually trips over the outage.
        let mut tripped = true;
        while !store.is_degraded() {
            if finished.load(Ordering::Relaxed) == WRITERS {
                tripped = false;
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        if !tripped {
            faulty.heal();
            break;
        }
        cycles += 1;
        // Degraded reads still serve.
        let _ = RangeRead::count(&*store, RangeSpec::all());
        std::thread::sleep(Duration::from_millis(3));
        faulty.heal();
        match store.try_resume() {
            Ok(true) => {}
            other => panic!("resume after heal must succeed, got {other:?}"),
        }
    }
    assert!(cycles >= 1, "at least one outage cycle must really happen");

    let mut acked: BTreeMap<i64, i64> = BTreeMap::new();
    for writer in writers {
        acked.extend(writer.join().unwrap());
    }
    stop.store(true, Ordering::Relaxed);
    assert!(scanner.join().unwrap() > 0, "the scanner really ran");

    // Quiescent memory holds exactly the acknowledged map (failed writes
    // were never applied; acknowledged ones never lost).
    for (key, value) in &acked {
        assert_eq!(PointMap::get(&*store, key), Some(*value), "key {key}");
    }
    assert_eq!(PointMap::len(&*store), acked.len() as u64);
    let stats = store.stats();
    assert_eq!(
        stats.degraded_entries, cycles,
        "one entry per induced outage"
    );
    assert_eq!(stats.resumes, cycles);
    assert_eq!(stats.degraded, 0);
    store.shutdown();
    drop(store);

    // Reopen on clean storage: per key, recovery may only be newer than
    // the last acknowledged value (an in-flight frame that reached the
    // disk before its escalation), never older and never missing.
    let store: DurableStore<i64, i64> = DurableStore::open(scratch.path()).unwrap();
    for (key, value) in &acked {
        let recovered = PointMap::get(&store, key)
            .unwrap_or_else(|| panic!("acknowledged key {key} lost in recovery"));
        assert!(
            recovered >= *value,
            "key {key}: recovered {recovered} older than acknowledged {value}"
        );
    }
    store.store().check_invariants();
}
