//! Atomicity of aggregate range queries under concurrent updates.
//!
//! The paper's central semantic claim is that `count(min, max)` is a *single
//! linearizable operation*: it reflects exactly the updates linearized before
//! it, never a partially applied one. These tests maintain an invariant over
//! a key window that every individual update preserves (up to the one update
//! in flight) and assert that concurrent counts never observe a violation —
//! something a collect-and-count implementation over a non-atomic traversal
//! cannot guarantee.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wait_free_range_trees::core::{RootQueueKind, TreeConfig};
use wait_free_range_trees::WaitFreeTree;

/// Writers swap keys in and out of a window so its population stays within
/// ±1 of the initial value at every linearization point; readers count the
/// window concurrently and must never see a larger deviation.
fn window_population_stays_consistent(config: TreeConfig) {
    const WINDOW: i64 = 2_000;
    const MOVES: i64 = 1_500;
    const WRITERS: i64 = 2;

    // Pre-fill every even key of each writer's stripe.
    let prefill: Vec<(i64, ())> = (0..WINDOW)
        .filter(|k| k % 2 == 0)
        .map(|k| (k, ()))
        .collect();
    let expected = prefill.len() as u64;
    let tree: Arc<WaitFreeTree<i64>> =
        Arc::new(WaitFreeTree::from_entries_with_config(prefill, config));
    assert_eq!(tree.count(0, WINDOW - 1), expected);

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                // Each writer owns a disjoint stripe of the window (keys with
                // k/2 ≡ w mod WRITERS) so writers never fight over the same
                // key and the ±1 envelope holds per linearization.
                for i in 0..MOVES {
                    let slot = (i * WRITERS + w) * 2 % WINDOW;
                    let resident = slot;
                    let vacant = slot + 1;
                    if i % 2 == 0 {
                        // Move resident → vacant: population dips by one
                        // between the two linearization points.
                        tree.remove(&resident);
                        tree.insert(vacant, ());
                    } else {
                        // Move back.
                        tree.remove(&vacant);
                        tree.insert(resident, ());
                    }
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let n = tree.count(0, WINDOW - 1);
                    assert!(
                        n + WRITERS as u64 >= expected && n <= expected + WRITERS as u64,
                        "count {n} outside the ±{WRITERS} envelope around {expected}",
                    );
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "readers must have observed counts");
    }
    // Every writer ends on an even number of moves... MOVES is odd per writer,
    // so just re-derive the final population from the physical contents.
    tree.check_invariants();
    assert_eq!(tree.count(0, WINDOW - 1), tree.len());
}

#[test]
fn counts_are_atomic_with_the_lock_free_root_queue() {
    window_population_stays_consistent(TreeConfig::default());
}

#[test]
fn counts_are_atomic_with_the_wait_free_root_queue() {
    window_population_stays_consistent(TreeConfig {
        root_queue: RootQueueKind::WaitFree { slots: 8 },
        ..TreeConfig::default()
    });
}

#[test]
fn counts_are_atomic_while_rebuilds_fire() {
    // An aggressive rebuild factor makes subtree replacement constant; counts
    // must stay exact through them.
    window_population_stays_consistent(TreeConfig {
        rebuild_factor: 0.5,
        ..TreeConfig::default()
    });
}

#[test]
fn range_sum_is_atomic_under_value_rebalancing() {
    use wait_free_range_trees::core::Sum;

    // Writers repeatedly move "budget" between two accounts by removing a
    // key-value pair and re-inserting it with the complementary value; the
    // total sum over the window is invariant except for the one pair in
    // flight, whose contribution is bounded by the per-account budget.
    const ACCOUNTS: i64 = 256;
    const BUDGET: i64 = 100;
    const MOVES: usize = 1_200;

    let tree: Arc<WaitFreeTree<i64, i64, Sum>> = Arc::new(WaitFreeTree::from_entries(
        (0..ACCOUNTS).map(|k| (k, BUDGET)),
    ));
    let expected: i128 = (ACCOUNTS * BUDGET) as i128;
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let tree = Arc::clone(&tree);
        std::thread::spawn(move || {
            for i in 0..MOVES {
                let account = (i as i64 * 7) % ACCOUNTS;
                // Remove and re-insert with the same value: the sum dips by at
                // most BUDGET between the two linearization points.
                tree.remove(&account);
                tree.insert(account, BUDGET);
            }
        })
    };
    let reader = {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observations = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let sum = tree.range_agg(0, ACCOUNTS - 1);
                assert!(
                    sum >= expected - BUDGET as i128 && sum <= expected,
                    "range_sum {sum} outside [{}, {expected}]",
                    expected - BUDGET as i128
                );
                observations += 1;
            }
            observations
        })
    };
    writer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    assert!(reader.join().unwrap() > 0);
    tree.check_invariants();
    assert_eq!(tree.range_agg(0, ACCOUNTS - 1), expected);
}
