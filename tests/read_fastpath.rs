//! The read fast paths against their oracles.
//!
//! PR 3 gave the descriptor trees a two-tier read path: `get`/`contains`
//! answered in `O(1)` from the presence index, and `count`/`range_agg`/
//! `collect_range` answered by an optimistic validated traversal with
//! descriptor fallback. These tests pin the fast paths to three oracles:
//!
//! * a `BTreeMap` replaying the same operation sequence (sequential
//!   proptest, random op interleavings);
//! * the descriptor read path itself (`ReadPath::Descriptor`), fed the same
//!   operations;
//! * under real concurrency, per-thread private key ranges in which every
//!   fast read must be exact, plus whole-tree conservation once quiescent
//!   (the linearizability checker covers the adversarial histories in
//!   `tests/linearizability.rs`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::prelude::*;

fn desc_config() -> TreeConfig {
    TreeConfig {
        read_path: ReadPath::Descriptor,
        ..TreeConfig::default()
    }
}

/// One step of the sequential oracle workload.
#[derive(Debug, Clone)]
enum Step {
    Insert(i64, i64),
    Replace(i64, i64),
    Remove(i64),
    Get(i64),
    Contains(i64),
    Count(i64, i64),
    Collect(i64, i64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let key = -40i64..40;
    prop_oneof![
        (key.clone(), any::<i64>()).prop_map(|(k, v)| Step::Insert(k, v)),
        (key.clone(), any::<i64>()).prop_map(|(k, v)| Step::Replace(k, v)),
        key.clone().prop_map(Step::Remove),
        key.clone().prop_map(Step::Get),
        key.clone().prop_map(Step::Contains),
        (key.clone(), key.clone()).prop_map(|(a, b)| Step::Count(a, b)),
        (key.clone(), key).prop_map(|(a, b)| Step::Collect(a, b)),
    ]
}

proptest! {
    /// Fast-path reads agree with both the descriptor path and `BTreeMap`
    /// over random operation sequences.
    #[test]
    fn fast_reads_agree_with_descriptor_path_and_btreemap(
        steps in proptest::collection::vec(step_strategy(), 1..120)
    ) {
        let fast: WaitFreeTree<i64, i64> = WaitFreeTree::new();
        let desc: WaitFreeTree<i64, i64> = WaitFreeTree::with_config(desc_config());
        let mut oracle = std::collections::BTreeMap::new();
        for step in &steps {
            match *step {
                Step::Insert(k, v) => {
                    let expect = !oracle.contains_key(&k);
                    if expect {
                        oracle.insert(k, v);
                    }
                    prop_assert_eq!(fast.insert(k, v), expect);
                    prop_assert_eq!(desc.insert(k, v), expect);
                }
                Step::Replace(k, v) => {
                    let expect = oracle.insert(k, v);
                    prop_assert_eq!(fast.insert_or_replace(k, v), expect);
                    prop_assert_eq!(desc.insert_or_replace(k, v), expect);
                }
                Step::Remove(k) => {
                    let expect = oracle.remove(&k);
                    prop_assert_eq!(fast.remove_entry(&k), expect);
                    prop_assert_eq!(desc.remove_entry(&k), expect);
                }
                Step::Get(k) => {
                    let expect = oracle.get(&k).copied();
                    prop_assert_eq!(fast.get(&k), expect);
                    prop_assert_eq!(desc.get(&k), expect);
                }
                Step::Contains(k) => {
                    let expect = oracle.contains_key(&k);
                    prop_assert_eq!(fast.contains(&k), expect);
                    prop_assert_eq!(desc.contains(&k), expect);
                }
                Step::Count(a, b) => {
                    let expect = if a > b {
                        0
                    } else {
                        oracle.range(a..=b).count() as u64
                    };
                    prop_assert_eq!(fast.count(a, b), expect, "count [{}, {}]", a, b);
                    prop_assert_eq!(desc.count(a, b), expect);
                }
                Step::Collect(a, b) => {
                    let expect: Vec<(i64, i64)> = if a > b {
                        Vec::new()
                    } else {
                        oracle.range(a..=b).map(|(k, v)| (*k, *v)).collect()
                    };
                    prop_assert_eq!(fast.collect_range(a, b), expect.clone());
                    prop_assert_eq!(desc.collect_range(a, b), expect);
                }
            }
        }
        fast.check_invariants();
        desc.check_invariants();
    }
}

/// Under concurrency, a thread that is the only writer of its key range
/// must observe exact fast-path reads over that range, for both read paths;
/// once quiescent, both paths agree globally.
#[test]
fn private_range_reads_are_exact_under_both_paths() {
    const THREADS: i64 = 4;
    const RANGE: i64 = 300;
    const STEPS: usize = 800;
    for read_path in [ReadPath::Fast, ReadPath::Descriptor] {
        let tree: Arc<WaitFreeTree<i64, i64>> = Arc::new(WaitFreeTree::with_config(TreeConfig {
            read_path,
            ..TreeConfig::default()
        }));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    let lo = t * RANGE;
                    let hi = lo + RANGE - 1;
                    let mut rng = StdRng::seed_from_u64(0xFA57 + t as u64);
                    let mut mine = std::collections::BTreeMap::new();
                    for _ in 0..STEPS {
                        let k = lo + rng.gen_range(0..RANGE);
                        match rng.gen_range(0..6) {
                            0 | 1 => {
                                let v = rng.gen::<i64>();
                                assert_eq!(tree.insert(k, v), !mine.contains_key(&k));
                                mine.entry(k).or_insert(v);
                            }
                            2 => {
                                assert_eq!(tree.remove_entry(&k), mine.remove(&k));
                            }
                            3 => {
                                assert_eq!(tree.get(&k), mine.get(&k).copied());
                                assert_eq!(tree.contains(&k), mine.contains_key(&k));
                            }
                            _ => {
                                let a = lo + rng.gen_range(0..RANGE);
                                let b = (a + rng.gen_range(0..RANGE / 4)).min(hi);
                                assert_eq!(
                                    tree.count(a, b),
                                    mine.range(a..=b).count() as u64,
                                    "private count [{a}, {b}]"
                                );
                            }
                        }
                    }
                    mine.len() as u64
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(tree.len(), total);
        assert_eq!(tree.count(i64::MIN, i64::MAX), total);
        assert_eq!(tree.collect_range(i64::MIN, i64::MAX).len() as u64, total);
        tree.check_invariants();
    }
}

/// Fast range reads stay monotone in an insert-only workload (the same
/// consistency bound the descriptor path is held to), and the fast-path
/// counters actually record hits under write contention.
#[test]
fn fast_range_reads_are_monotone_during_inserts() {
    const PER_THREAD: i64 = 1_200;
    const WRITERS: i64 = 3;
    let tree: Arc<WaitFreeTree<i64>> = Arc::new(WaitFreeTree::new());
    let done = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    tree.insert(t * PER_THREAD + i, ());
                }
            })
        })
        .collect();
    let reader = {
        let tree = Arc::clone(&tree);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last = 0u64;
            while !done.load(Ordering::Relaxed) {
                let n = tree.count(i64::MIN, i64::MAX);
                assert!(
                    n >= last,
                    "fast count went backwards ({last} -> {n}) in an insert-only workload"
                );
                last = n;
            }
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    reader.join().unwrap();
    let stats = tree.stats();
    assert!(
        stats.fast_range_hits + stats.range_fallbacks > 0,
        "the reader must have exercised the fast path dispatch"
    );
    assert_eq!(
        tree.count(i64::MIN, i64::MAX),
        (WRITERS * PER_THREAD) as u64
    );
    tree.check_invariants();
}

/// The trie mirror: fast and descriptor paths agree against a `BTreeMap`
/// replay, single-threaded.
#[test]
fn trie_fast_reads_agree_with_descriptor_path() {
    let fast: WaitFreeTrie<u64, u64> = WaitFreeTrie::new();
    let desc: WaitFreeTrie<u64, u64> = WaitFreeTrie::with_read_path(ReadPath::Descriptor);
    let mut oracle = std::collections::BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0x7121E);
    for _ in 0..2_000 {
        let k = rng.gen_range(0..128u64);
        match rng.gen_range(0..6) {
            0 | 1 => {
                let v = rng.gen::<u64>();
                let expect = !oracle.contains_key(&k);
                if expect {
                    oracle.insert(k, v);
                }
                assert_eq!(fast.insert(k, v), expect);
                assert_eq!(desc.insert(k, v), expect);
            }
            2 => {
                let expect = oracle.remove(&k);
                assert_eq!(fast.remove_entry(&k), expect);
                assert_eq!(desc.remove_entry(&k), expect);
            }
            3 => {
                assert_eq!(fast.get(&k), oracle.get(&k).copied());
                assert_eq!(fast.contains(&k), oracle.contains_key(&k));
            }
            _ => {
                let a = rng.gen_range(0..128u64);
                let b = a + rng.gen_range(0..32u64);
                let expect = oracle.range(a..=b).count() as u64;
                assert_eq!(fast.count(a, b), expect);
                assert_eq!(desc.count(a, b), expect);
            }
        }
    }
    fast.check_invariants();
    desc.check_invariants();
}
