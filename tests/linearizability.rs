//! Linearizability tests: many short adversarial concurrent executions are
//! recorded and replayed through the Wing & Gong checker against the
//! sequential range-set specification.
//!
//! The paper's central correctness claim (operations linearize in root-queue
//! timestamp order) is checked here empirically for the wait-free tree with
//! both root-queue variants, and the same harness is applied to the
//! persistent and lock-based baselines; the op mix includes the atomic
//! `replace` descriptor wherever the backend provides one. The lock-free
//! external BST baseline is checked on its scalar insert/remove/contains
//! only: its `collect`/`count` is documented as a non-linearizable
//! best-effort traversal and its `replace` is a non-atomic remove+insert
//! composition (weaknesses of the prior-work class that the paper's design
//! closes).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wait_free_range_trees::lincheck::{
    check_history_with_initial, History, RangeSetOp, RangeSetRet, RangeSetSpec, ThreadRecorder,
};
use wait_free_range_trees::prelude::MetricsSnapshot;
use wait_free_range_trees::workload::{ConcurrentSet, TreeImpl};

/// Number of worker threads per recorded history.
const THREADS: usize = 3;
/// Operations per thread per history (the checker is exponential, keep it
/// small — 3 × 6 = 18 operations per history).
const OPS_PER_THREAD: usize = 6;
/// Key universe; tiny so operations collide constantly.
const KEY_RANGE: i64 = 8;

/// Which optional operations a recorded execution mixes in.
#[derive(Clone, Copy)]
struct OpMix {
    /// Aggregate/collect counting queries.
    range_queries: bool,
    /// The atomic upsert (excluded for the baseline whose replace is a
    /// documented non-atomic remove+insert composition).
    replace: bool,
    /// Snapshot reads: two subrange counts from one acquired front
    /// (`SnapshotRead`); the checker verifies the pair against a single
    /// abstract state.
    snapshots: bool,
    /// Chunked scans: a streaming cursor drained to completion with
    /// `ScanConsistency::Snapshot` (`RangeScan::scan_snapshot`, chunk size
    /// 2 so nearly every drain spans several chunks); the checker verifies
    /// the concatenated pages against a single abstract state's listing.
    scans: bool,
    /// Transactional operations: membership-toggling `Patch`,
    /// insert-if-absent `CompareAndSet`, and the two-key `AtomicBatch`
    /// (remove one key + insert another in one atomic commit). Enabled
    /// only where the backend's batch commit and RMW path are atomic
    /// (`TreeImpl::batch_is_atomic` / `patch_is_atomic`) — the `wft-api`
    /// get-then-write defaults lose updates under contention by design.
    transactions: bool,
}

/// Runs one recorded execution against `set` and returns the history.
fn record_round(
    set: Arc<dyn ConcurrentSet>,
    seed: u64,
    mix: OpMix,
) -> History<RangeSetOp, RangeSetRet> {
    History::record(THREADS, |recorders| {
        let handles: Vec<_> = recorders
            .iter()
            .enumerate()
            .map(|(t, recorder)| {
                let recorder: ThreadRecorder<RangeSetOp, RangeSetRet> = recorder.clone();
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
                    // The enabled op kinds, drawn uniformly.
                    let mut kinds: Vec<u8> = vec![0, 1, 2];
                    if mix.range_queries {
                        kinds.extend([3, 4]);
                    }
                    if mix.replace {
                        kinds.push(5);
                    }
                    if mix.snapshots {
                        kinds.push(6);
                    }
                    if mix.scans {
                        kinds.push(7);
                    }
                    if mix.transactions {
                        kinds.extend([8, 9, 10]);
                    }
                    for _ in 0..OPS_PER_THREAD {
                        let key = rng.gen_range(0..KEY_RANGE);
                        match kinds[rng.gen_range(0..kinds.len() as i64) as usize] {
                            0 => {
                                let token = recorder.invoke(RangeSetOp::Insert(key));
                                let ok = set.insert(key);
                                recorder.respond(token, RangeSetRet::Bool(ok));
                            }
                            1 => {
                                let token = recorder.invoke(RangeSetOp::Remove(key));
                                let ok = set.remove(key);
                                recorder.respond(token, RangeSetRet::Bool(ok));
                            }
                            2 => {
                                let token = recorder.invoke(RangeSetOp::Contains(key));
                                let ok = set.contains(key);
                                recorder.respond(token, RangeSetRet::Bool(ok));
                            }
                            3 => {
                                let hi = rng.gen_range(key..KEY_RANGE);
                                let token = recorder.invoke(RangeSetOp::Count(key, hi));
                                let n = set.count(key, hi);
                                recorder.respond(token, RangeSetRet::Count(n));
                            }
                            4 => {
                                let hi = rng.gen_range(key..KEY_RANGE);
                                let token = recorder.invoke(RangeSetOp::Count(key, hi));
                                let n = set.count_via_collect(key, hi);
                                recorder.respond(token, RangeSetRet::Count(n));
                            }
                            5 => {
                                let token = recorder.invoke(RangeSetOp::Replace(key));
                                let was_present = set.replace(key);
                                recorder.respond(token, RangeSetRet::Bool(was_present));
                            }
                            6 => {
                                // One subrange plus the whole key universe,
                                // counted from one snapshot: the pair must be
                                // explained by a single abstract state.
                                let hi = rng.gen_range(key..KEY_RANGE);
                                let token = recorder.invoke(RangeSetOp::SnapshotCounts(
                                    key,
                                    hi,
                                    0,
                                    KEY_RANGE - 1,
                                ));
                                let (a, b) = set.snapshot_count_pair(key, hi, 0, KEY_RANGE - 1);
                                recorder.respond(token, RangeSetRet::CountPair(a, b));
                            }
                            7 => {
                                // A paginated drain (chunk size 2, so the
                                // range spans several pages) completed as a
                                // single snapshot: the concatenated pages
                                // must equal a single abstract state's
                                // listing.
                                let hi = rng.gen_range(key..KEY_RANGE);
                                let token = recorder.invoke(RangeSetOp::ChunkedScan(key, hi, 2));
                                let keys = set.chunked_scan_snapshot(key, hi, 2);
                                recorder.respond(token, RangeSetRet::Keys(keys));
                            }
                            8 => {
                                // The atomic RMW: toggle membership. Any
                                // lost update under contention produces a
                                // presence answer no sequential order
                                // explains.
                                let token = recorder.invoke(RangeSetOp::Patch(key));
                                let present = set.patch_toggle(key);
                                recorder.respond(token, RangeSetRet::Bool(present));
                            }
                            9 => {
                                let token = recorder.invoke(RangeSetOp::CompareAndSet(key));
                                let applied = set.cas_insert(key);
                                recorder.respond(token, RangeSetRet::Bool(applied));
                            }
                            10 => {
                                // A two-key atomic batch: move `key` to a
                                // distinct `dst`. With per-thread shards in
                                // the store builds this routinely crosses
                                // shard boundaries, which is the case the
                                // publish-at-front commit exists for.
                                let dst = (key + rng.gen_range(1..KEY_RANGE)) % KEY_RANGE;
                                let token = recorder.invoke(RangeSetOp::AtomicBatch(key, dst));
                                let (removed, inserted) = set.batch_move(key, dst);
                                recorder.respond(token, RangeSetRet::Pair(removed, inserted));
                            }
                            kind => unreachable!("unknown op kind {kind}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    })
}

/// Checks `rounds` independent executions of `imp` and panics with the
/// offending history on the first non-linearizable one.
fn assert_linearizable(imp: TreeImpl, rounds: u64, with_range_queries: bool) {
    let mix = OpMix {
        range_queries: with_range_queries,
        replace: imp.replace_is_atomic(),
        // Every backend speaks `SnapshotRead` (single trees through the
        // single-front blanket impl, the store through its global front), so
        // snapshot pairs ride along wherever range queries are checked.
        snapshots: with_range_queries,
        // Likewise `RangeScan`: single trees through the shared front
        // cursor, the store through its per-shard-cut merge cursor.
        scans: with_range_queries,
        // Patch/CAS/AtomicBatch histories only where they are atomic:
        // elsewhere they are documented get-then-write compositions whose
        // lost updates the checker would rightly reject.
        transactions: imp.batch_is_atomic() && imp.patch_is_atomic(),
    };
    for round in 0..rounds {
        // Alternate between an empty tree and a small prefill so both code
        // paths (empty-tree fast paths, populated routing) are covered.
        let prefill: Vec<i64> = if round % 2 == 0 {
            Vec::new()
        } else {
            (0..KEY_RANGE).step_by(2).collect()
        };
        let set = imp.build(&prefill, THREADS);
        let history = record_round(set, 0xA11CE + round, mix);
        let initial = RangeSetSpec::prefilled(prefill.iter().copied());
        let verdict = check_history_with_initial::<RangeSetSpec>(&history, initial);
        assert!(
            verdict.is_linearizable(),
            "{}: round {round} produced a non-linearizable history:\n{verdict:?}\n{history:#?}",
            imp.name()
        );
    }
}

#[test]
fn wait_free_tree_scalar_and_range_operations_linearize() {
    // The default build answers reads through the fast paths
    // (`ReadPath::Fast`): presence-index point reads plus the optimistic
    // validated range traversal with descriptor fallback.
    assert_linearizable(TreeImpl::WaitFree, 25, true);
}

#[test]
fn wait_free_tree_descriptor_read_path_linearizes() {
    // The same histories with every read forced through the descriptor
    // machinery (`ReadPath::Descriptor`): both read paths must be
    // linearizable, independently.
    assert_linearizable(TreeImpl::WaitFreeDescReads, 25, true);
}

#[test]
fn wait_free_tree_with_wait_free_root_queue_linearizes() {
    assert_linearizable(TreeImpl::WaitFreeWfRoot, 20, true);
}

#[test]
fn persistent_baseline_linearizes() {
    assert_linearizable(TreeImpl::Persistent, 20, true);
}

#[test]
fn locked_baseline_linearizes() {
    assert_linearizable(TreeImpl::Locked, 15, true);
}

#[test]
fn wait_free_trie_scalar_and_range_operations_linearize() {
    assert_linearizable(TreeImpl::Trie, 25, true);
}

#[test]
fn wait_free_trie_descriptor_read_path_linearizes() {
    assert_linearizable(TreeImpl::TrieDescReads, 20, true);
}

#[test]
fn sharded_store_cross_shard_snapshots_linearize() {
    // The global timestamp front makes cross-shard `count` / snapshot pairs
    // single-snapshot: with THREADS shards over a KEY_RANGE of 8 keys,
    // nearly every range query and snapshot pair spans several shards.
    // `batch_is_atomic` holds for the store, so these histories also mix
    // the transactional ops: membership-toggling patches, cas-inserts, and
    // two-key atomic batches whose keys routinely land on different shards
    // — the publish-at-front commit is what keeps the gap between the two
    // ops invisible to every concurrent count, collect, snapshot pair and
    // chunked scan in the history.
    assert_linearizable(TreeImpl::Sharded, 25, true);
}

#[test]
fn durable_store_transactional_batches_linearize() {
    // The durable store sequences every batch through the journal's log
    // thread (shadow-resolution + physical WAL logging) onto the gated
    // sharded store; the same transactional histories must linearize
    // through that extra layer. Few rounds — every write pays an fsync.
    assert_linearizable(TreeImpl::Durable, 4, true);
}

#[test]
fn sharded_store_descriptor_read_path_linearizes() {
    // The same check with every shard's reads forced through the descriptor
    // machinery: the front argument is read-path independent.
    assert_linearizable(TreeImpl::ShardedDescReads, 15, true);
}

#[test]
fn lock_free_bst_scalar_operations_linearize() {
    // Scalar operations only: the linear-time baseline's range queries are
    // documented best-effort snapshots, which is precisely the limitation the
    // paper's aggregate range queries remove.
    assert_linearizable(TreeImpl::LockFreeLinear, 25, false);
}

#[test]
fn checker_rejects_a_broken_implementation() {
    // Sanity check that the harness has teeth: a deliberately broken "set"
    // whose contains() always answers false must be caught.
    struct AlwaysEmpty;
    impl ConcurrentSet for AlwaysEmpty {
        fn insert(&self, _key: i64) -> bool {
            true
        }
        fn replace(&self, _key: i64) -> bool {
            false
        }
        fn remove(&self, _key: i64) -> bool {
            false
        }
        fn contains(&self, _key: i64) -> bool {
            false
        }
        fn count(&self, _min: i64, _max: i64) -> u64 {
            0
        }
        fn count_via_collect(&self, min: i64, max: i64) -> u64 {
            self.count(min, max)
        }
        fn snapshot_count_pair(&self, _: i64, _: i64, _: i64, _: i64) -> (u64, u64) {
            (0, 0)
        }
        fn chunked_scan_count(&self, _: i64, _: i64, _: usize) -> (u64, bool) {
            (0, true)
        }
        fn chunked_scan_snapshot(&self, _: i64, _: i64, _: usize) -> Vec<i64> {
            Vec::new()
        }
        fn patch_toggle(&self, _key: i64) -> bool {
            false
        }
        fn cas_insert(&self, _key: i64) -> bool {
            true
        }
        fn batch_move(&self, _a: i64, _b: i64) -> (bool, bool) {
            (false, true)
        }
        fn len(&self) -> u64 {
            0
        }
        fn metrics_snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot::new()
        }
    }
    let set: Arc<dyn ConcurrentSet> = Arc::new(AlwaysEmpty);
    // A single thread suffices: insert twice (both "succeed"), which is
    // already impossible for a set.
    let history = History::record(1, |recorders| {
        let r = &recorders[0];
        let token = r.invoke(RangeSetOp::Insert(1));
        let ok = set.insert(1);
        r.respond(token, RangeSetRet::Bool(ok));
        let token = r.invoke(RangeSetOp::Insert(1));
        let ok = set.insert(1);
        r.respond(token, RangeSetRet::Bool(ok));
    });
    let verdict = check_history_with_initial::<RangeSetSpec>(&history, RangeSetSpec::prefilled([]));
    assert!(!verdict.is_linearizable());
}
